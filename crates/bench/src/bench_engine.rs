//! The memsim/engine hot-path speed program (`opm bench` /
//! `cargo run --bin bench_engine`).
//!
//! Measures the four throughput surfaces behind every figure pipeline —
//! simulated-accesses/sec through the trace-driven cache hierarchy,
//! reuse-histogram lines/sec, sweep-stage points/sec, and reduced-campaign
//! wall time — and writes them to a stable-schema `BENCH_engine.json` at
//! the repo root so the perf trajectory stays visible across PRs
//! (ROADMAP item 2). Two snapshots of the file are directly comparable
//! field by field; the schema is validated by `tests/bench_schema.rs` and
//! the CI `bench-smoke` job.
//!
//! Workloads are deterministic (fixed traces, grids, and seeds); only the
//! wall-clock fields vary between runs. `--smoke` shrinks every workload
//! for CI while keeping each one large enough that no wall time rounds
//! to zero (a zero/inf/NaN throughput field is a schema violation — the
//! same bug class as the `points_per_sec` zero-wall guard).

use opm_core::platform::{EdramMode, Machine, McdramMode, OpmConfig};
use opm_kernels::engine::{Engine, EngineConfig};
use opm_kernels::sweeps::{gemm_sweep_on, sparse_sweep_on, stream_curve_on, SparseKernelId};
use opm_memsim::reuse::reuse_histogram;
use opm_memsim::synth::trace_from_tiers;
use opm_memsim::trace::Trace;
use opm_memsim::HierarchySim;
use opm_sparse::gen::corpus;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema identifier written to (and asserted on) every report.
pub const SCHEMA: &str = "opm-bench-engine/v1";

/// Default output file, relative to the working directory (the repo root
/// in CI and the documented invocation).
pub const DEFAULT_OUT: &str = "BENCH_engine.json";

/// Figures timed as the reduced-campaign benchmark (the golden-tested
/// pipelines, so the measured work is exactly what the regression tests
/// pin down).
pub const CAMPAIGN_FIGURES: &[&str] = &[
    "fig06_stepping_model",
    "fig07_gemm_broadwell",
    "fig09_spmv_broadwell",
    "fig12_stream_broadwell",
    "fig23_stream_knl",
    "fig25_fft_knl",
];

/// Figures timed in `--smoke` mode.
pub const SMOKE_FIGURES: &[&str] = &["fig12_stream_broadwell", "fig23_stream_knl"];

/// Harness options.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Shrink every workload for CI smoke runs.
    pub smoke: bool,
    /// Skip the reduced-campaign section (unit/schema tests keep their
    /// runtime bounded with the microbenchmarks alone — the campaign
    /// section is then an empty list, not absent).
    pub campaign: bool,
    /// Output path (`None` = don't write, return the report only).
    pub out: Option<PathBuf>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            smoke: false,
            campaign: true,
            out: Some(PathBuf::from(DEFAULT_OUT)),
        }
    }
}

/// One timed workload: `items` units of work in `wall_secs`.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload label, e.g. `brd-edram/seq`.
    pub name: String,
    /// Work units completed (line touches, histogram lines, sweep
    /// points).
    pub items: u64,
    /// Measured wall time in seconds.
    pub wall_secs: f64,
}

impl Measurement {
    /// Items per second; degrades to 0.0 (never inf/NaN) for an
    /// instantaneous measurement, mirroring
    /// [`StageRecord::points_per_sec`](opm_kernels::engine::StageRecord::points_per_sec).
    pub fn rate(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.items as f64 / self.wall_secs
        }
    }
}

/// Aggregate of a measurement group.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupTotal {
    /// Summed work items.
    pub items: u64,
    /// Summed wall seconds.
    pub wall_secs: f64,
}

impl GroupTotal {
    fn of(cases: &[Measurement]) -> GroupTotal {
        GroupTotal {
            items: cases.iter().map(|m| m.items).sum(),
            // `+ 0.0` normalizes the empty-group sum: an empty f64
            // iterator sums to -0.0, which would print as "-0" in the
            // JSON report when the campaign is skipped.
            wall_secs: cases.iter().map(|m| m.wall_secs).sum::<f64>() + 0.0,
        }
    }

    /// Aggregate items/sec (0.0 for an empty or instantaneous group).
    pub fn rate(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.items as f64 / self.wall_secs
        }
    }
}

/// The full harness result, serializable as `BENCH_engine.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `smoke` or `full`.
    pub mode: &'static str,
    /// Engine worker threads used for the sweep/campaign sections.
    pub threads: usize,
    /// Trace-driven hierarchy simulation (line touches/sec).
    pub hierarchy: Vec<Measurement>,
    /// Reuse-distance histogram computation (lines/sec).
    pub reuse: Vec<Measurement>,
    /// Engine sweep stages (points/sec).
    pub stages: Vec<Measurement>,
    /// Reduced-figure pipelines (points/sec each; wall time is the
    /// headline).
    pub campaign: Vec<Measurement>,
}

impl BenchReport {
    /// Headline metric: simulated line touches per second through the
    /// hierarchy simulator.
    pub fn simulated_accesses_per_sec(&self) -> f64 {
        GroupTotal::of(&self.hierarchy).rate()
    }

    /// Reuse-histogram throughput in lines/sec.
    pub fn reuse_lines_per_sec(&self) -> f64 {
        GroupTotal::of(&self.reuse).rate()
    }

    /// Sweep-stage throughput in points/sec.
    pub fn sweep_points_per_sec(&self) -> f64 {
        GroupTotal::of(&self.stages).rate()
    }

    /// Total wall time of the reduced campaign in seconds.
    pub fn campaign_wall_secs(&self) -> f64 {
        GroupTotal::of(&self.campaign).wall_secs
    }

    /// Render the stable-schema JSON document (hand-rolled: the build is
    /// offline, so no serde; key order is fixed so two snapshots diff
    /// cleanly).
    pub fn to_json(&self) -> String {
        fn group(out: &mut String, key: &str, unit: &str, cases: &[Measurement]) {
            let total = GroupTotal::of(cases);
            let _ = write!(
                out,
                "  \"{key}\": {{\n    \"unit\": \"{unit}\",\n    \"total_items\": {},\n    \
                 \"total_wall_secs\": {},\n    \"items_per_sec\": {},\n    \"cases\": [\n",
                total.items,
                json_f64(total.wall_secs),
                json_f64(total.rate()),
            );
            for (i, m) in cases.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "      {{\"name\": \"{}\", \"items\": {}, \"wall_secs\": {}, \
                     \"items_per_sec\": {}}}{}",
                    m.name,
                    m.items,
                    json_f64(m.wall_secs),
                    json_f64(m.rate()),
                    if i + 1 == cases.len() { "" } else { "," },
                );
            }
            out.push_str("    ]\n  }");
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{}\",\n  \"threads\": {},\n",
            self.mode, self.threads
        );
        let _ = write!(
            out,
            "  \"simulated_accesses_per_sec\": {},\n  \"reuse_lines_per_sec\": {},\n  \
             \"sweep_points_per_sec\": {},\n  \"campaign_wall_secs\": {},\n",
            json_f64(self.simulated_accesses_per_sec()),
            json_f64(self.reuse_lines_per_sec()),
            json_f64(self.sweep_points_per_sec()),
            json_f64(self.campaign_wall_secs()),
        );
        group(
            &mut out,
            "hierarchy_sim",
            "accesses_per_sec",
            &self.hierarchy,
        );
        out.push_str(",\n");
        group(&mut out, "reuse_histogram", "lines_per_sec", &self.reuse);
        out.push_str(",\n");
        group(&mut out, "sweep_stages", "points_per_sec", &self.stages);
        out.push_str(",\n");
        group(&mut out, "campaign", "points_per_sec", &self.campaign);
        out.push_str("\n}\n");
        out
    }

    /// Write the JSON document to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// One console line per metric group (the trajectory at a glance).
    pub fn summary(&self) -> String {
        format!(
            "hierarchy  {:>12.0} simulated accesses/sec\n\
             reuse      {:>12.0} histogram lines/sec\n\
             sweeps     {:>12.0} points/sec\n\
             campaign   {:>12.3} s wall ({} figures)",
            self.simulated_accesses_per_sec(),
            self.reuse_lines_per_sec(),
            self.sweep_points_per_sec(),
            self.campaign_wall_secs(),
            self.campaign.len(),
        )
    }
}

/// JSON-safe float rendering: finite shortest-repr, with non-finite
/// values degraded to 0 (they would otherwise produce invalid JSON; the
/// schema test rejects them as values, so the degradation is visible).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Time `f` and return the elapsed seconds alongside its output.
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Milli-machine scale used for the hierarchy benches (matches the scale
/// the validation tests simulate at).
const SCALE: u64 = 1024;

/// The hierarchy benchmark traces: the access shapes the kernels
/// produce (streaming, strided/line-granularity, random, multi-tier).
fn bench_traces(smoke: bool) -> Vec<(&'static str, Trace)> {
    // Workload scale: every trace yields ~`touches` line touches.
    let k = if smoke { 1 } else { 8 };
    vec![
        // 8-byte streaming reads: 8 touches per line, the dominant
        // kernel access shape (STREAM, GEMM inner loops).
        (
            "seq",
            Trace::sequential(0, 512 * 1024, 2 * k), // 128 Ki accesses/pass
        ),
        // Line-granularity sweep: one touch per line, LRU-thrashing.
        ("stride64", {
            let mut t = Trace::new();
            for pass in 0..2 * k {
                let mut a = 0u64;
                while a < 2 * 1024 * 1024 {
                    t.read(a, 8);
                    a += 64;
                }
                let _ = pass;
            }
            t
        }),
        // Pseudo-random single-line touches over 16 MiB.
        ("rand", Trace::random(0, 16 << 20, 131_072 * k, 2017)),
        // Two-tier reuse mix plus streaming remainder (the synthetic
        // trace generator used for model cross-validation).
        (
            "tiered",
            trace_from_tiers(
                &[(32.0 * 1024.0, 0.5), (1024.0 * 1024.0, 0.3)],
                131_072 * k,
                7,
            ),
        ),
    ]
}

/// Hierarchy configurations exercised: victim eDRAM, direct-mapped
/// MCDRAM cache, and flat MCDRAM (every structurally distinct probe
/// path).
const BENCH_CONFIGS: &[OpmConfig] = &[
    OpmConfig::Broadwell(EdramMode::On),
    OpmConfig::Knl(McdramMode::Cache),
    OpmConfig::Knl(McdramMode::Flat),
];

fn bench_hierarchy(smoke: bool) -> Vec<Measurement> {
    let traces = bench_traces(smoke);
    // Honors OPM_TRACE_SHARDS (default 1 = serial); results are
    // bit-identical at any shard count, only wall time may change.
    let shards = opm_memsim::trace_shards_from_env();
    let mut out = Vec::new();
    for &config in BENCH_CONFIGS {
        for (tname, trace) in &traces {
            let mut sim = HierarchySim::for_config(config, SCALE);
            // Warm pass (capacity fills), then the measured passes.
            sim.run_sharded(trace, shards);
            let before = sim.result().accesses;
            let (_, wall) = timed(|| {
                sim.run_sharded(trace, shards);
                sim.run_sharded(trace, shards);
            });
            out.push(Measurement {
                name: format!("{}/{}", config.label(), tname),
                items: sim.result().accesses - before,
                wall_secs: wall,
            });
        }
    }
    out
}

fn bench_reuse(smoke: bool) -> Vec<Measurement> {
    let traces = bench_traces(smoke);
    traces
        .iter()
        .map(|(tname, trace)| {
            let (h, wall) = timed(|| reuse_histogram(trace));
            Measurement {
                name: format!("reuse/{tname}"),
                items: h.total,
                wall_secs: wall,
            }
        })
        .collect()
}

fn bench_stages(smoke: bool, threads: usize) -> Vec<Measurement> {
    // Each stage runs on a fresh private engine (cold profile cache) so
    // the measurement is compute throughput, not memo-hit latency, and
    // so the harness never perturbs the global engine's caches.
    let engine = || {
        Engine::new(EngineConfig {
            threads,
            ..EngineConfig::default()
        })
    };
    let mut out = Vec::new();
    let dense_n: Vec<usize> = if smoke {
        vec![256, 2304, 8448, 16128]
    } else {
        vec![256, 1280, 2304, 4352, 8448, 12288, 16128, 20224]
    };
    let tiles: Vec<usize> = if smoke {
        vec![128, 512, 1024, 4096]
    } else {
        vec![64, 128, 256, 512, 1024, 2048, 4096, 8192]
    };
    {
        let eng = engine();
        let config = OpmConfig::Broadwell(EdramMode::On);
        let (pts, wall) = timed(|| gemm_sweep_on(&eng, config, &dense_n, &tiles));
        out.push(Measurement {
            name: "gemm_sweep".to_string(),
            items: pts.len() as u64,
            wall_secs: wall,
        });
    }
    {
        let eng = engine();
        let specs = corpus(if smoke { 48 } else { 256 });
        let config = OpmConfig::Knl(McdramMode::Cache);
        let (pts, wall) = timed(|| sparse_sweep_on(&eng, config, SparseKernelId::Spmv, &specs));
        out.push(Measurement {
            name: "spmv_sweep".to_string(),
            items: pts.len() as u64,
            wall_secs: wall,
        });
    }
    {
        let eng = engine();
        let config = OpmConfig::Knl(McdramMode::Flat);
        let samples = if smoke { 24 } else { 96 };
        let footprints = opm_kernels::sweeps::paper_stream_footprints(Machine::Knl, samples);
        let (pts, wall) = timed(|| stream_curve_on(&eng, config, &footprints));
        out.push(Measurement {
            name: "stream_curve".to_string(),
            items: pts.len() as u64,
            wall_secs: wall,
        });
    }
    out
}

fn bench_campaign(smoke: bool) -> Vec<Measurement> {
    let names: Vec<String> = if smoke {
        SMOKE_FIGURES
    } else {
        CAMPAIGN_FIGURES
    }
    .iter()
    .map(|s| s.to_string())
    .collect();
    crate::manifest::run_figures(Some(&names))
        .into_iter()
        .map(|r| Measurement {
            name: r.name.to_string(),
            items: r.points as u64,
            wall_secs: r.wall_secs(),
        })
        .collect()
}

/// Run the full harness. When the campaign section is enabled this
/// configures the process environment for a reduced run (`OPM_REDUCED`,
/// plus a scratch `OPM_RESULTS` if unset) — it must run before anything
/// else initializes the global engine.
pub fn run_bench(opts: &BenchOptions) -> BenchReport {
    if opts.campaign {
        std::env::set_var("OPM_REDUCED", "1");
        if std::env::var_os("OPM_RESULTS").is_none() {
            let dir = std::env::temp_dir().join("opm_bench_results");
            let _ = std::fs::create_dir_all(&dir);
            std::env::set_var("OPM_RESULTS", &dir);
        }
    }
    let threads = Engine::global().config().threads;
    let report = BenchReport {
        mode: if opts.smoke { "smoke" } else { "full" },
        threads,
        hierarchy: bench_hierarchy(opts.smoke),
        reuse: bench_reuse(opts.smoke),
        stages: bench_stages(opts.smoke, threads),
        campaign: if opts.campaign {
            bench_campaign(opts.smoke)
        } else {
            Vec::new()
        },
    };
    if let Some(path) = &opts.out {
        report
            .write(path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_degrades_non_finite() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn measurement_rate_guards_zero_wall() {
        let m = Measurement {
            name: "x".into(),
            items: 10,
            wall_secs: 0.0,
        };
        assert_eq!(m.rate(), 0.0);
        let m2 = Measurement {
            wall_secs: 2.0,
            ..m
        };
        assert!((m2.rate() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn report_json_has_schema_and_groups() {
        let r = BenchReport {
            mode: "smoke",
            threads: 2,
            hierarchy: vec![Measurement {
                name: "a/b".into(),
                items: 100,
                wall_secs: 0.5,
            }],
            reuse: vec![],
            stages: vec![],
            campaign: vec![],
        };
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"opm-bench-engine/v1\""));
        for key in [
            "hierarchy_sim",
            "reuse_histogram",
            "sweep_stages",
            "campaign",
            "simulated_accesses_per_sec",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.contains("\"items_per_sec\": 200"));
    }
}
