//! The campaign supervisor: spawns one `opm shard-worker` process per
//! shard, watches their heartbeat files, and restarts crashed or hung
//! workers from their checkpoints with bounded exponential backoff.
//!
//! The supervision contract is deliberately narrow so its behaviour is
//! testable under injected faults:
//!
//! - A worker that **exits nonzero** (including being SIGKILLed, or an
//!   injected `kill@…` fault calling `exit(137)`) is restarted with
//!   `--resume` and `OPM_SHARD_ATTEMPT` incremented.
//! - A worker whose **heartbeat file goes stale** for longer than the
//!   watchdog timeout is presumed hung (an injected `hang@…` fault
//!   wedges an evaluation thread while the heartbeat thread goes
//!   silent), killed, and restarted the same way.
//! - After `max_restarts` restarts a shard is **quarantined**: the
//!   supervisor stops restarting it, records a structured row in the
//!   `run_errors.csv` schema (stage `shard/<label>`), and the campaign
//!   as a whole reports failure.
//!
//! Restart counts and quarantines are exported as
//! `opm_shard_restarts_total` / `opm_shard_quarantined_total` in
//! `shards/supervisor.prom`, which `opm merge-shards` folds into the
//! campaign's `metrics.prom`. Because shard workers checkpoint through
//! the sealed journals in [`crate::checkpoint`] and resume skips only
//! figures whose journal proves completion, a campaign that loses
//! workers mid-run still converges to output byte-identical to a
//! fault-free single-process run.

use crate::shard::{self, ShardSpec};
use opm_core::report::{atomic_write, RecordTable};
use opm_core::telemetry::{render_prom, CounterSnapshot, PromDump};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Options for [`run_campaign`] (the `opm campaign` subcommand).
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Number of shard worker processes.
    pub shards: usize,
    /// Figure selection (`None` = the full registry).
    pub figures: Option<Vec<String>>,
    /// Pass `--resume` to the first spawn of every worker (restarts
    /// always resume regardless).
    pub resume: bool,
    /// Campaign output directory; shard state lives in `<dir>/shards/`.
    pub dir: PathBuf,
    /// Heartbeat staleness threshold before a worker is presumed hung.
    pub watchdog: Duration,
    /// Heartbeat interval handed to workers via `OPM_HEARTBEAT_MS`.
    pub heartbeat_ms: u64,
    /// Restarts allowed per shard before quarantine.
    pub max_restarts: usize,
    /// Base of the exponential restart backoff (doubles per restart).
    pub backoff_base: Duration,
    /// Merge shard outputs into `dir` after the run (`opm merge-shards`).
    pub merge: bool,
    /// Worker executable; defaults to `OPM_WORKER_EXE` or the current
    /// executable (the `opm` binary re-invoked as `shard-worker`).
    pub worker_exe: Option<PathBuf>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            shards: 2,
            figures: None,
            resume: false,
            dir: crate::out_dir(),
            watchdog: Duration::from_millis(5_000),
            heartbeat_ms: shard::DEFAULT_HEARTBEAT_MS,
            max_restarts: 3,
            backoff_base: Duration::from_millis(250),
            merge: true,
            worker_exe: None,
        }
    }
}

/// Why a worker incarnation was declared failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailureKind {
    /// Process exited nonzero or died to a signal.
    Kill,
    /// Heartbeat stale beyond the watchdog; worker killed by us.
    Hang,
}

impl FailureKind {
    fn label(self) -> &'static str {
        match self {
            FailureKind::Kill => "kill",
            FailureKind::Hang => "hang",
        }
    }
}

enum WorkerState {
    Running { child: Child },
    Backoff { until: Instant },
    Done,
    Quarantined,
}

impl WorkerState {
    fn label(&self) -> &'static str {
        match self {
            WorkerState::Running { .. } => "running",
            WorkerState::Backoff { .. } => "backoff",
            WorkerState::Done => "done",
            WorkerState::Quarantined => "quarantined",
        }
    }
}

struct Worker {
    spec: ShardSpec,
    state: WorkerState,
    /// Restart generation, exported as `OPM_SHARD_ATTEMPT` (0 = first run).
    attempt: usize,
    restarts: usize,
    hb_seen: String,
    hb_changed: Instant,
    /// Structured quarantine row in the `run_errors.csv` schema.
    error: Option<[String; 7]>,
}

/// Resolve the worker executable: explicit option, then
/// `OPM_WORKER_EXE`, then the running binary itself.
fn worker_exe(opts: &CampaignOptions) -> Result<PathBuf, String> {
    if let Some(exe) = &opts.worker_exe {
        return Ok(exe.clone());
    }
    if let Ok(exe) = std::env::var("OPM_WORKER_EXE") {
        return Ok(PathBuf::from(exe));
    }
    std::env::current_exe().map_err(|e| format!("cannot locate worker executable: {e}"))
}

/// Spawn (or respawn) one shard worker process, wiring its results
/// dir, heartbeat, and restart generation through the environment and
/// appending its stdout/stderr to the shard log.
fn spawn_worker(opts: &CampaignOptions, exe: &PathBuf, w: &mut Worker) -> Result<(), String> {
    let spec = w.spec;
    let results = shard::shard_results_dir(&opts.dir, spec);
    let hb = shard::heartbeat_path(&opts.dir, spec);
    std::fs::create_dir_all(&results)
        .map_err(|e| format!("creating {}: {e}", results.display()))?;
    let log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(shard::worker_log_path(&opts.dir, spec))
        .map_err(|e| format!("opening shard {spec} log: {e}"))?;
    let log_err = log
        .try_clone()
        .map_err(|e| format!("shard {spec} log: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("shard-worker")
        .arg("--shard")
        .arg(spec.to_string())
        .env("OPM_RESULTS", &results)
        .env("OPM_HEARTBEAT", &hb)
        .env("OPM_HEARTBEAT_MS", opts.heartbeat_ms.to_string())
        .env("OPM_SHARD", spec.index.to_string())
        .env("OPM_SHARD_ATTEMPT", w.attempt.to_string())
        .env("OPM_RUN_ID", format!("shard-{}", spec.label()))
        .stdin(Stdio::null())
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(log_err));
    // Campaigns observe by default: workers run with full telemetry
    // unless the caller pinned a mode, so every campaign leaves traces,
    // flight recorders, and mergeable histograms behind.
    if std::env::var_os("OPM_TELEMETRY").is_none() {
        cmd.env("OPM_TELEMETRY", "full");
    }
    if let Some(figures) = &opts.figures {
        cmd.arg("--only").arg(figures.join(","));
    }
    if opts.resume || w.attempt > 0 {
        cmd.arg("--resume");
    }
    let child = cmd
        .spawn()
        .map_err(|e| format!("spawning shard {spec} worker: {e}"))?;
    eprintln!(
        "supervisor: shard {spec} attempt {} running as pid {}",
        w.attempt,
        child.id()
    );
    w.state = WorkerState::Running { child };
    w.hb_changed = Instant::now();
    Ok(())
}

/// Declare the current incarnation of `w` failed: restart with backoff
/// if the budget allows, quarantine otherwise.
fn fail_worker(opts: &CampaignOptions, w: &mut Worker, kind: FailureKind, message: String) {
    if w.restarts < opts.max_restarts {
        w.restarts += 1;
        w.attempt = w.restarts;
        let backoff = opts.backoff_base * 2u32.saturating_pow(w.restarts as u32 - 1);
        eprintln!(
            "supervisor: shard {} {} ({message}); restart {}/{} in {backoff:?}",
            w.spec,
            kind.label(),
            w.restarts,
            opts.max_restarts
        );
        w.state = WorkerState::Backoff {
            until: Instant::now() + backoff,
        };
    } else {
        eprintln!(
            "supervisor: shard {} {} ({message}); restart budget exhausted — quarantined",
            w.spec,
            kind.label()
        );
        w.error = Some([
            format!("shard/{}", w.spec.label()),
            "-".to_string(),
            kind.label().to_string(),
            (w.restarts + 1).to_string(),
            "true".to_string(),
            "quarantined".to_string(),
            message,
        ]);
        w.state = WorkerState::Quarantined;
    }
}

/// Write `shards/supervisor.status`: one campaign line plus one line
/// per shard, consumed by `opm top --campaign`.
fn write_status(opts: &CampaignOptions, workers: &[Worker], finished: bool) {
    let mut out = format!(
        "campaign shards={} state={}\n",
        opts.shards,
        if finished { "finished" } else { "running" }
    );
    for w in workers {
        out.push_str(&format!(
            "shard {} state={} attempt={} restarts={}\n",
            w.spec.label(),
            w.state.label(),
            w.attempt,
            w.restarts
        ));
    }
    let path = shard::status_path(&opts.dir);
    if let Err(e) = atomic_write(&path, out.as_bytes()) {
        eprintln!("supervisor: writing {}: {e}", path.display());
    }
}

/// Write `shards/supervisor.prom` with per-shard restart/quarantine
/// counters (both series always present so assertions can read zeros).
fn write_prom(opts: &CampaignOptions, workers: &[Worker]) {
    let mut counters = Vec::new();
    for w in workers {
        counters.push(CounterSnapshot {
            metric: "opm_shard_restarts_total".to_string(),
            labels: format!("shard=\"{}\"", w.spec.label()),
            value: w.restarts as u64,
        });
    }
    for w in workers {
        counters.push(CounterSnapshot {
            metric: "opm_shard_quarantined_total".to_string(),
            labels: format!("shard=\"{}\"", w.spec.label()),
            value: matches!(w.state, WorkerState::Quarantined) as u64,
        });
    }
    let path = shard::supervisor_prom_path(&opts.dir);
    if let Err(e) = atomic_write(&path, render_prom(&counters).as_bytes()) {
        eprintln!("supervisor: writing {}: {e}", path.display());
    }
}

/// Write `shards/live.prom`: the live union of every worker's telemetry
/// snapshot (counters summed, gauges maxed, histogram buckets summed) —
/// a single scrape target for campaign-wide progress while workers are
/// still running. Best-effort: absent or torn snapshots are skipped.
fn write_live(opts: &CampaignOptions, workers: &[Worker]) {
    let mut live = PromDump::default();
    let mut merged_any = false;
    for w in workers {
        let snap = shard::snapshot_path(&opts.dir, w.spec);
        let Ok(text) = std::fs::read_to_string(&snap) else {
            continue;
        };
        match PromDump::parse(&text) {
            Ok(dump) => {
                live.merge(&dump);
                merged_any = true;
            }
            Err(e) => eprintln!("supervisor: parsing {}: {e}", snap.display()),
        }
    }
    if !merged_any {
        return;
    }
    let path = shard::shards_dir(&opts.dir).join("live.prom");
    if let Err(e) = atomic_write(&path, live.render().as_bytes()) {
        eprintln!("supervisor: writing {}: {e}", path.display());
    }
}

/// Write `shards/supervisor_errors.csv` (run_errors schema) with one
/// row per quarantined shard; header-only when none.
fn write_errors(opts: &CampaignOptions, workers: &[Worker]) {
    let mut t = RecordTable::new(vec![
        "stage",
        "point",
        "kind",
        "attempts",
        "transient",
        "outcome",
        "message",
    ]);
    for w in workers {
        if let Some(row) = &w.error {
            t.push(row.to_vec());
        }
    }
    if let Err(e) = t.write_csv(shard::shards_dir(&opts.dir), "supervisor_errors") {
        eprintln!("supervisor: writing supervisor_errors.csv: {e}");
    }
}

/// Run a sharded campaign to completion. Returns a human summary, or
/// `Err` when any shard was quarantined (so `opm` exits nonzero) or the
/// post-run merge failed.
pub fn run_campaign(opts: &CampaignOptions) -> Result<String, String> {
    if opts.shards == 0 {
        return Err("campaign: --shards must be >= 1".into());
    }
    if let Some(figures) = &opts.figures {
        for name in figures {
            if crate::manifest::find(name).is_none() {
                return Err(format!("unknown figure {name:?}"));
            }
        }
    }
    let exe = worker_exe(opts)?;
    std::fs::create_dir_all(shard::shards_dir(&opts.dir))
        .map_err(|e| format!("creating {}: {e}", shard::shards_dir(&opts.dir).display()))?;
    eprintln!(
        "supervisor: {} shard(s), watchdog {:?}, heartbeat {}ms, max {} restart(s), worker {}",
        opts.shards,
        opts.watchdog,
        opts.heartbeat_ms,
        opts.max_restarts,
        exe.display()
    );
    let mut workers: Vec<Worker> = (0..opts.shards)
        .map(|index| Worker {
            spec: ShardSpec {
                index,
                count: opts.shards,
            },
            state: WorkerState::Backoff {
                until: Instant::now(),
            },
            attempt: 0,
            restarts: 0,
            hb_seen: String::new(),
            hb_changed: Instant::now(),
            error: None,
        })
        .collect();

    let poll = Duration::from_millis((opts.heartbeat_ms / 2).clamp(20, 200));
    let mut last_status = String::new();
    let mut last_live = Instant::now();
    loop {
        for w in &mut workers {
            match &mut w.state {
                WorkerState::Backoff { until } => {
                    if Instant::now() >= *until {
                        if let Err(e) = spawn_worker(opts, &exe, w) {
                            fail_worker(opts, w, FailureKind::Kill, e);
                        }
                    }
                }
                WorkerState::Running { child } => {
                    match child.try_wait() {
                        Ok(Some(status)) if status.success() => {
                            eprintln!("supervisor: shard {} completed", w.spec);
                            w.state = WorkerState::Done;
                        }
                        Ok(Some(status)) => {
                            let message = format!(
                                "worker exited abnormally ({status}) on attempt {}",
                                w.attempt
                            );
                            fail_worker(opts, w, FailureKind::Kill, message);
                        }
                        Ok(None) => {
                            // Still running: watch the heartbeat. The spawn
                            // (or last beat) timestamp anchors staleness, so
                            // a worker that never beats at all still trips
                            // the watchdog.
                            let hb = shard::heartbeat_path(&opts.dir, w.spec);
                            if let Ok(beat) = std::fs::read_to_string(&hb) {
                                if beat != w.hb_seen {
                                    w.hb_seen = beat;
                                    w.hb_changed = Instant::now();
                                }
                            }
                            if w.hb_changed.elapsed() > opts.watchdog {
                                let stale = w.hb_changed.elapsed();
                                let _ = child.kill();
                                let _ = child.wait();
                                let message = format!(
                                    "heartbeat stale for {stale:?} (watchdog {:?}) on attempt {}",
                                    opts.watchdog, w.attempt
                                );
                                fail_worker(opts, w, FailureKind::Hang, message);
                            }
                        }
                        Err(e) => {
                            let message = format!("wait on worker failed: {e}");
                            fail_worker(opts, w, FailureKind::Kill, message);
                        }
                    }
                }
                WorkerState::Done | WorkerState::Quarantined => {}
            }
        }
        let finished = workers
            .iter()
            .all(|w| matches!(w.state, WorkerState::Done | WorkerState::Quarantined));
        let status = workers
            .iter()
            .map(|w| format!("{}:{}:{}", w.spec.label(), w.state.label(), w.restarts))
            .collect::<Vec<_>>()
            .join(" ");
        if status != last_status {
            write_status(opts, &workers, finished);
            write_prom(opts, &workers);
            last_status = status;
        }
        if last_live.elapsed() >= Duration::from_secs(1) {
            write_live(opts, &workers);
            last_live = Instant::now();
        }
        if finished {
            break;
        }
        std::thread::sleep(poll);
    }
    write_status(opts, &workers, true);
    write_prom(opts, &workers);
    write_live(opts, &workers);
    write_errors(opts, &workers);

    let restarts: usize = workers.iter().map(|w| w.restarts).sum();
    let quarantined: Vec<String> = workers
        .iter()
        .filter(|w| matches!(w.state, WorkerState::Quarantined))
        .map(|w| w.spec.label())
        .collect();
    let mut summary = format!(
        "campaign: {} shard(s), {restarts} restart(s), {} quarantined",
        opts.shards,
        quarantined.len()
    );
    if opts.merge {
        match crate::merge::merge_shards(&opts.dir) {
            Ok(m) => summary.push_str(&format!("\n{m}")),
            Err(e) => return Err(format!("{summary}\nmerge failed: {e}")),
        }
    }
    if quarantined.is_empty() {
        Ok(summary)
    } else {
        Err(format!(
            "{summary}\nquarantined shard(s): {} — see {}",
            quarantined.join(", "),
            shard::supervisor_errors_path(&opts.dir).display()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_rejects_bad_configs() {
        let opts = CampaignOptions {
            shards: 0,
            ..CampaignOptions::default()
        };
        assert!(run_campaign(&opts).unwrap_err().contains("--shards"));
        let opts = CampaignOptions {
            figures: Some(vec!["not_a_figure".into()]),
            ..CampaignOptions::default()
        };
        assert!(run_campaign(&opts).unwrap_err().contains("unknown figure"));
    }

    #[test]
    fn quarantine_after_budget_exhaustion_records_error_row() {
        let opts = CampaignOptions {
            max_restarts: 1,
            backoff_base: Duration::from_millis(1),
            ..CampaignOptions::default()
        };
        let mut w = Worker {
            spec: ShardSpec { index: 0, count: 2 },
            state: WorkerState::Done,
            attempt: 0,
            restarts: 0,
            hb_seen: String::new(),
            hb_changed: Instant::now(),
            error: None,
        };
        fail_worker(&opts, &mut w, FailureKind::Kill, "exit 137".into());
        assert!(matches!(w.state, WorkerState::Backoff { .. }));
        assert_eq!((w.restarts, w.attempt), (1, 1));
        assert!(w.error.is_none());
        fail_worker(&opts, &mut w, FailureKind::Hang, "stale".into());
        assert!(matches!(w.state, WorkerState::Quarantined));
        let row = w.error.expect("quarantine row");
        assert_eq!(row[0], "shard/0of2");
        assert_eq!(row[2], "hang");
        assert_eq!(row[3], "2");
        assert_eq!(row[5], "quarantined");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let opts = CampaignOptions {
            max_restarts: 3,
            backoff_base: Duration::from_millis(100),
            ..CampaignOptions::default()
        };
        let mut w = Worker {
            spec: ShardSpec { index: 1, count: 2 },
            state: WorkerState::Done,
            attempt: 0,
            restarts: 0,
            hb_seen: String::new(),
            hb_changed: Instant::now(),
            error: None,
        };
        let mut waits = Vec::new();
        for _ in 0..3 {
            let before = Instant::now();
            fail_worker(&opts, &mut w, FailureKind::Kill, "x".into());
            match w.state {
                WorkerState::Backoff { until } => waits.push(until - before),
                _ => panic!("expected backoff"),
            }
        }
        assert!(waits[1] > waits[0] && waits[2] > waits[1], "{waits:?}");
        assert!(waits[2] >= Duration::from_millis(390), "{waits:?}");
    }
}
