//! The `opm` command-line driver: ad-hoc model queries without writing
//! code. Subcommands: `model` (evaluate one kernel configuration),
//! `recommend` (§6 guidelines), `stepping` (print a stepping curve),
//! `corpus` (inspect the UF-substitute corpus), `serve`/`advise`/
//! `loadgen` (the `opm-api/v1` query service and its clients), plus the
//! campaign/bench machinery. Argument parsing is hand-rolled
//! (`--key value` pairs) to stay inside the approved dependency set.
//!
//! ## Globals and exit codes
//!
//! Every subcommand accepts the shared globals `--threads <n>`,
//! `--telemetry <off|summary|full>`, and `--out <path>`; they are
//! applied (via the corresponding `OPM_*` variables, which remain the
//! configuration source for worker processes) before the subcommand
//! runs, and the merged configuration is validated once up front. The
//! process exits with:
//!
//! * `0` — success;
//! * `1` — runtime failure (evaluation, I/O, a regression gate);
//! * `2` — usage or configuration error (unknown subcommand, malformed
//!   global flag or `OPM_*` value).

use opm_core::api::Request;
use opm_core::guideline::{explain_mcdram, recommend_mcdram, Workload};
use opm_core::perf::PerfModel;
use opm_core::platform::{Machine, OpmConfig, PlatformSpec};
use opm_core::power::PowerModel;
use opm_core::profile::AccessProfile;
use opm_core::stepping::{stepping_curve, SweepKernel};
use opm_core::units::{GIB, MIB};
use opm_kernels::registry::KernelId;
use std::collections::HashMap;

/// Parsed `--key value` arguments plus positional words.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// Positional arguments (subcommand first).
    pub positional: Vec<String>,
    /// `--key value` options (`--flag` alone stores "true").
    pub options: HashMap<String, String>,
}

/// Parse a raw argument list.
pub fn parse_args(raw: &[String]) -> Args {
    let mut args = Args::default();
    let mut i = 0;
    while i < raw.len() {
        let a = &raw[i];
        if let Some(key) = a.strip_prefix("--") {
            let next_is_value = raw
                .get(i + 1)
                .map(|v| !v.starts_with("--"))
                .unwrap_or(false);
            if next_is_value {
                args.options.insert(key.to_string(), raw[i + 1].clone());
                i += 2;
            } else {
                args.options.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            args.positional.push(a.clone());
            i += 1;
        }
    }
    args
}

impl Args {
    fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.options
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v}"))
            })
            .unwrap_or(default)
    }

    fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get_f64(key, default as f64) as usize
    }

    fn get_flag(&self, key: &str) -> bool {
        self.options.get(key).map(|v| v == "true").unwrap_or(false)
    }
}

/// Parse a configuration label (as printed by `OpmConfig::label`).
pub fn parse_config(label: &str) -> Option<OpmConfig> {
    OpmConfig::broadwell_modes()
        .into_iter()
        .chain(OpmConfig::knl_modes())
        .find(|c| c.label() == label)
}

/// Parse a kernel name (case-insensitive).
pub fn parse_kernel(name: &str) -> Option<KernelId> {
    KernelId::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Build the profile for a `model` invocation from CLI options.
pub fn profile_from_args(kernel: KernelId, machine: Machine, args: &Args) -> AccessProfile {
    let threads = args.get_usize("threads", kernel.threads(machine));
    let cores = PlatformSpec::for_machine(machine).cores;
    match kernel {
        KernelId::Gemm => opm_dense::gemm_profile(
            args.get_usize("n", 8192),
            args.get_usize("tile", 384),
            threads,
            cores,
        ),
        KernelId::Cholesky => opm_dense::cholesky_profile(
            args.get_usize("n", 8192),
            args.get_usize("tile", 384),
            threads,
            cores,
        ),
        KernelId::Spmv => opm_sparse::spmv_profile(
            args.get_usize("rows", 1_000_000),
            args.get_usize("nnz", 15_000_000),
            args.get_f64("span", 400_000.0),
            threads,
        ),
        KernelId::Sptrans => opm_sparse::sptrans_profile(
            args.get_usize("rows", 1_000_000),
            args.get_usize("nnz", 15_000_000),
            threads,
        ),
        KernelId::Sptrsv => opm_sparse::sptrsv_profile(
            args.get_usize("rows", 1_000_000),
            args.get_usize("nnz", 15_000_000),
            args.get_f64("span", 400_000.0),
            args.get_f64("levels", 300.0),
            threads,
        ),
        KernelId::Fft => opm_fft::fft3d_profile(args.get_usize("n", 400), threads, cores),
        KernelId::Stencil => {
            let g = args.get_usize("grid", 512);
            opm_stencil::stencil_profile(g, g, g, (64, 64, 96), threads, cores)
        }
        KernelId::Stream => {
            let mb = args.get_f64("footprint-mb", 2048.0);
            opm_stencil::stream_profile(((mb * MIB) / 24.0) as usize, 4, threads)
        }
    }
}

/// Default TCP port of `opm serve`.
pub const DEFAULT_SERVE_PORT: u16 = 7979;

/// A CLI failure carrying its process exit code: `2` for usage or
/// configuration errors, `1` for runtime failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliFailure {
    /// Process exit code (1 or 2).
    pub code: i32,
    /// Message for stderr.
    pub message: String,
}

impl CliFailure {
    fn usage(message: impl Into<String>) -> CliFailure {
        CliFailure {
            code: 2,
            message: message.into(),
        }
    }

    fn runtime(message: impl Into<String>) -> CliFailure {
        CliFailure {
            code: 1,
            message: message.into(),
        }
    }
}

/// Apply the shared globals (`--threads`, `--telemetry`, `--out`) to
/// the process environment — env stays the configuration source, so
/// spawned shard workers inherit the settings — then validate the
/// merged configuration once. Subcommands with their own `--out`
/// meaning (a file path, a campaign directory) consume the option
/// directly; for everything else `--out` selects the results directory.
fn apply_globals(args: &Args, cmd: &str) -> Result<(), CliFailure> {
    if let Some(threads) = args.options.get("threads") {
        std::env::set_var("OPM_THREADS", threads);
    }
    if let Some(mode) = args.options.get("telemetry") {
        std::env::set_var("OPM_TELEMETRY", mode);
    }
    if let Some(out) = args.options.get("out") {
        // bench/loadgen treat --out as an output *file*; campaign and
        // merge-shards handle the directory themselves.
        if !matches!(cmd, "bench" | "loadgen" | "campaign" | "merge-shards") && out != "true" {
            std::env::set_var("OPM_RESULTS", out);
        }
    }
    opm_core::config::Config::from_env().map_err(|e| CliFailure::usage(e.to_string()))?;
    Ok(())
}

/// Run the CLI; returns the text to print, or a failure with its exit
/// code. This is the `opm` binary's entry point.
pub fn dispatch(raw: &[String]) -> Result<String, CliFailure> {
    let args = parse_args(raw);
    let cmd = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    apply_globals(&args, cmd)?;
    match cmd {
        "model" => cmd_model(&args).map_err(CliFailure::runtime),
        "recommend" => cmd_recommend(&args).map_err(CliFailure::runtime),
        "stepping" => cmd_stepping(&args).map_err(CliFailure::runtime),
        "corpus" => cmd_corpus(&args).map_err(CliFailure::runtime),
        "top" => cmd_top(&args).map_err(CliFailure::runtime),
        "bench" => cmd_bench(&args).map_err(CliFailure::runtime),
        "campaign" => cmd_campaign(&args).map_err(CliFailure::runtime),
        "shard-worker" => crate::shard::run_worker(&args).map_err(CliFailure::runtime),
        "merge-shards" => cmd_merge_shards(&args).map_err(CliFailure::runtime),
        "serve" => cmd_serve(&args).map_err(CliFailure::runtime),
        "advise" => cmd_advise(&args).map_err(CliFailure::runtime),
        "loadgen" => cmd_loadgen(&args).map_err(CliFailure::runtime),
        "help" | "--help" => Ok(HELP.to_string()),
        other => Err(CliFailure::usage(format!(
            "unknown subcommand '{other}'\n{HELP}"
        ))),
    }
}

/// [`dispatch`] with the exit code flattened away (kept for tests and
/// embedders that only care about success/failure).
pub fn run(raw: &[String]) -> Result<String, String> {
    dispatch(raw).map_err(|f| f.message)
}

const HELP: &str = "\
opm — query the OPM reproduction models

GLOBAL OPTIONS (accepted by every subcommand):
  --threads <n>        engine worker threads (applies OPM_THREADS)
  --telemetry <mode>   off | summary | full (applies OPM_TELEMETRY)
  --out <path>         results destination (directory via OPM_RESULTS; an
                       output *file* for bench/loadgen; campaign dir for
                       campaign/merge-shards)

EXIT CODES:
  0  success
  1  runtime failure (evaluation, I/O, regression gate)
  2  usage/configuration error (unknown subcommand, malformed global
     flag or OPM_* environment value)

USAGE:
  opm model --kernel <name> --config <label> [kernel options]
      kernels: GEMM Cholesky SpMV SpTRANS SpTRSV FFT Stencil Stream
      configs: brd-no-edram brd-edram knl-ddr knl-flat knl-cache knl-hybrid
      options: --n --tile --rows --nnz --span --levels --grid --footprint-mb --threads
  opm serve [--addr <host:port>] [--max-inflight <n>]
      run the mode advisor as an opm-api/v1 daemon (length-prefixed JSON
      frames over TCP; default 127.0.0.1:7979). Prints \"opm serve
      listening on <addr>\" once ready; answers batched what-if queries
      from a cross-request LRU profile cache (bound it with
      OPM_CACHE_CAP); requests beyond --max-inflight are load-shed with
      a typed `overloaded` response. A request with \"shutdown\": true
      drains the daemon.
  opm advise (--kernel <name> --config <label> [kernel options]
             [--hot-mb <f>] [--latency-bound <bool>] [--id <n>]
             | --request <json>) [--addr <host:port>]
      one-shot advisor query; prints the canonical opm-api/v1 response
      document — byte-identical to the daemon's answer for the same
      request. --request sends a raw request document; --addr forwards
      to a live daemon instead of answering in-process.
  opm loadgen [--addr <host:port>] [--requests <n>] [--concurrency <n>]
             [--batch <n>] [--rate <req/s>] [--shutdown] [--out <path>]
      drive a daemon with closed-loop (default) or open-loop (--rate)
      load over a deterministic kernel×config query mix and write
      BENCH_serve.json (schema opm-bench-serve/v1: throughput and
      p50/p95/p99 latency). --shutdown tears the daemon down after.
  opm recommend --footprint-gib <f> [--hot-gib <f>] [--latency-bound]
  opm stepping --config <label> [--ai <f>] [--samples <n>]
  opm corpus [--count <n>] [--index <i>]
  opm corpus --dir <path>
      load every .mtx under <path>; unparseable files are quarantined to
      results/quarantine_manifest.csv (with the parse reason) instead of
      aborting the sweep. OPM_FAULT_SPEC=io@matrix:<stem> injects load
      faults for testing.
  opm top [--dir <path>] [--run <id>] [--campaign <dir>] [--follow]
          [--interval-ms <n>]
      inspect a figure campaign from its telemetry trace (newest .jsonl
      under results/telemetry by default; run `all_figures
      --telemetry full` to produce one). --follow re-renders every
      --interval-ms (default 500) until the run_end marker appears.
      --campaign <dir> instead renders the shard table of a supervised
      `opm campaign`: state, attempt, restarts, and heartbeat age from
      <dir>/shards/supervisor.status, plus per-shard points, pts/s, and
      p50/p95/p99 point latency from each worker's live
      <dir>/shards/snap-<i>of<n>.prom snapshot, and a TOTAL row from the
      merged <dir>/telemetry/metrics.prom (falling back to the snapshot
      union while the campaign runs).
  opm bench [--smoke] [--no-campaign] [--out <path>]
           [--compare <baseline.json>] [--fail-on-regression]
      run the memsim/engine hot-path speed program and write
      BENCH_engine.json (schema opm-bench-engine/v1; see the
      \"Performance tracking\" section of README.md). --compare prints
      per-metric deltas vs a committed baseline report; with the opt-in
      --fail-on-regression, any metric >20% worse exits nonzero.
  opm campaign --shards <n> [--only <figs>] [--resume] [--out <dir>]
              [--reduced] [--threads <n>] [--fault-spec <spec>]
              [--watchdog-ms <n>] [--heartbeat-ms <n>]
              [--max-restarts <n>] [--backoff-ms <n>] [--no-merge]
              [--worker-exe <path>]
      run the figure campaign split across <n> supervised worker
      processes. Crashed or hung workers (stale heartbeat beyond the
      watchdog) are restarted from their checkpoints with exponential
      backoff; after --max-restarts failures a shard is quarantined and
      the campaign exits nonzero. Shard outputs are merged into --out
      (default results/) unless --no-merge.
  opm shard-worker --shard <i>/<n> [--only <figs>] [--resume]
      run one shard slice in-process (the supervisor's child command;
      --shard 0/1 reproduces the whole single-process campaign).
  opm merge-shards [--dir <path>]
      reconcile <dir>/shards/shard-*/ outputs into <dir>: figure CSVs
      unioned, run_manifest.csv reordered with TOTAL recomputed,
      run_errors.csv merged with supervisor shard rows, and metrics.prom
      merged typed (counters summed, gauges maxed, latency-histogram
      buckets summed exactly) — byte-identical to a single-process run.
";

/// Build one `opm-api/v1` query from `--kernel`/`--config` plus the
/// kernel parameter flags (shared by `opm advise` and anything else
/// that wants a query from flags).
pub fn query_from_args(args: &Args) -> Result<opm_core::api::Query, String> {
    let kernel = args
        .options
        .get("kernel")
        .ok_or("advise requires --kernel")?
        .clone();
    let config = args
        .options
        .get("config")
        .ok_or("advise requires --config")?
        .clone();
    let u = |key: &str| -> Option<u64> {
        args.options
            .get(key)
            .and_then(|v| v.parse::<f64>().ok())
            .map(|v| v as u64)
    };
    let f = |key: &str| -> Option<f64> { args.options.get(key).and_then(|v| v.parse().ok()) };
    Ok(opm_core::api::Query {
        kernel,
        config,
        n: u("n"),
        tile: u("tile"),
        rows: u("rows"),
        nnz: u("nnz"),
        grid: u("grid"),
        threads: u("query-threads").or_else(|| u("threads")),
        span: f("span"),
        levels: f("levels"),
        footprint_mb: f("footprint-mb"),
        hot_mb: f("hot-mb"),
        latency_bound: if args.options.contains_key("latency-bound") {
            Some(args.get_flag("latency-bound"))
        } else {
            None
        },
    })
}

/// `opm advise`: the one-shot advisor. Prints the canonical
/// `opm-api/v1` response document — byte-identical to what a daemon
/// returns for the same request, because both run [`crate::serve::respond`].
/// With `--addr`, forwards the request to a live daemon instead and
/// prints its bytes (a byte-identity probe).
fn cmd_advise(args: &Args) -> Result<String, String> {
    let req = match args.options.get("request") {
        Some(raw) => {
            Request::parse(raw).map_err(|e| format!("advise: bad --request document: {e}"))?
        }
        None => Request {
            id: args.get_usize("id", 0) as u64,
            queries: vec![query_from_args(args)?],
            shutdown: false,
        },
    };
    match args.options.get("addr") {
        Some(addr) => crate::serve::Client::connect(addr)
            .map_err(|e| format!("advise: connecting {addr}: {e}"))?
            .roundtrip_raw(&req.render()),
        None => Ok(crate::serve::respond(opm_kernels::Engine::global(), &req).render()),
    }
}

/// `opm serve`: bind the advisor daemon and serve until a shutdown
/// request drains (see [`crate::serve`]).
fn cmd_serve(args: &Args) -> Result<String, String> {
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| format!("127.0.0.1:{DEFAULT_SERVE_PORT}"));
    let max_inflight = args.get_usize("max-inflight", crate::serve::DEFAULT_MAX_INFLIGHT);
    let cfg = opm_core::config::Config::from_env().map_err(|e| e.to_string())?;
    let tele = opm_core::telemetry::Telemetry::new(cfg.telemetry);
    let run = crate::telemetry::init(&tele);
    let mut engine_cfg =
        opm_kernels::engine::EngineConfig::from_config(&cfg).with_telemetry(tele.clone());
    // A daemon serves an unbounded key population: bound the profile
    // cache unless OPM_CACHE_CAP chose an explicit bound.
    engine_cfg.cache_capacity = engine_cfg
        .cache_capacity
        .or(Some(crate::serve::DEFAULT_SERVE_CACHE_CAP));
    let engine = std::sync::Arc::new(opm_kernels::Engine::new(engine_cfg));
    let server = crate::serve::Server::bind(&addr, engine, max_inflight)
        .map_err(|e| format!("serve: binding {addr}: {e}"))?;
    let bound = server
        .local_addr()
        .map_err(|e| format!("serve: local_addr: {e}"))?;
    // The readiness line clients and the CI smoke job wait for.
    println!("opm serve listening on {bound} (max-inflight {max_inflight})");
    let _ = std::io::Write::flush(&mut std::io::stdout());
    let stats = server.run().map_err(|e| format!("serve: {e}"))?;
    if let Some(run) = run {
        run.finish();
    }
    Ok(format!(
        "served {} requests ({} queries) over {} connections; {} shed, {} malformed",
        stats.requests, stats.queries, stats.connections, stats.shed, stats.malformed
    ))
}

/// `opm loadgen`: drive a daemon and write `BENCH_serve.json` (see
/// [`crate::loadgen`]).
fn cmd_loadgen(args: &Args) -> Result<String, String> {
    for key in args.options.keys() {
        if !matches!(
            key.as_str(),
            "addr" | "requests" | "concurrency" | "batch" | "rate" | "shutdown" | "out"
                | "threads" | "telemetry"
        ) {
            return Err(format!("loadgen: unknown option --{key}\n{HELP}"));
        }
    }
    let defaults = crate::loadgen::LoadgenOptions::default();
    let out = match args.options.get("out") {
        Some(v) if v == "true" => return Err("loadgen: --out needs a path".to_string()),
        Some(v) => Some(std::path::PathBuf::from(v)),
        None => defaults.out.clone(),
    };
    let opts = crate::loadgen::LoadgenOptions {
        addr: args
            .options
            .get("addr")
            .cloned()
            .unwrap_or(defaults.addr.clone()),
        requests: args.get_usize("requests", defaults.requests),
        concurrency: args.get_usize("concurrency", defaults.concurrency),
        batch: args.get_usize("batch", defaults.batch),
        rate: match args.options.get("rate") {
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("loadgen: --rate expects a number, got {v:?}"))?,
            ),
            None => None,
        },
        shutdown: args.get_flag("shutdown"),
        out,
    };
    let report = crate::loadgen::run_loadgen(&opts)?;
    let mut text = report.summary();
    if let Some(out) = &opts.out {
        text.push_str(&format!("\nwrote {}", out.display()));
    }
    Ok(text)
}

/// `opm campaign`: supervised multi-process shard execution (see
/// [`crate::supervisor`]).
fn cmd_campaign(args: &Args) -> Result<String, String> {
    let figures = args
        .options
        .get("only")
        .map(|list| list.split(',').map(str::to_string).collect::<Vec<String>>());
    // Campaign-wide engine settings propagate to workers through the
    // environment (children inherit it).
    if args.get_flag("reduced") {
        std::env::set_var("OPM_REDUCED", "1");
    }
    if let Some(threads) = args.options.get("threads") {
        std::env::set_var("OPM_THREADS", threads);
    }
    if let Some(spec) = args.options.get("fault-spec") {
        std::env::set_var("OPM_FAULT_SPEC", spec);
    }
    let defaults = crate::supervisor::CampaignOptions::default();
    let opts = crate::supervisor::CampaignOptions {
        shards: args.get_usize("shards", 2),
        figures,
        resume: args.get_flag("resume"),
        dir: args
            .options
            .get("out")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(crate::out_dir),
        watchdog: std::time::Duration::from_millis(
            args.get_usize("watchdog-ms", defaults.watchdog.as_millis() as usize) as u64,
        ),
        heartbeat_ms: args.get_usize("heartbeat-ms", defaults.heartbeat_ms as usize) as u64,
        max_restarts: args.get_usize("max-restarts", defaults.max_restarts),
        backoff_base: std::time::Duration::from_millis(
            args.get_usize("backoff-ms", defaults.backoff_base.as_millis() as usize) as u64,
        ),
        merge: !args.get_flag("no-merge"),
        worker_exe: args.options.get("worker-exe").map(std::path::PathBuf::from),
    };
    crate::supervisor::run_campaign(&opts)
}

/// `opm merge-shards`: reconcile shard outputs (see [`crate::merge`]).
fn cmd_merge_shards(args: &Args) -> Result<String, String> {
    let dir = args
        .options
        .get("dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(crate::out_dir);
    crate::merge::merge_shards(&dir)
}

fn cmd_model(args: &Args) -> Result<String, String> {
    let kernel = parse_kernel(
        args.options
            .get("kernel")
            .ok_or("model requires --kernel")?,
    )
    .ok_or("unknown kernel")?;
    let config = parse_config(
        args.options
            .get("config")
            .ok_or("model requires --config")?,
    )
    .ok_or("unknown config label")?;
    let machine = config.machine();
    let prof = profile_from_args(kernel, machine, args);
    let est = PerfModel::for_config(config).evaluate(&prof);
    let power = PowerModel::for_machine(machine).sample(
        &est,
        config,
        prof.total_flops(),
        prof.total_bytes(),
    );
    Ok(format!(
        "{} on {} ({})\n\
         footprint        {:.1} MB\n\
         modeled time     {:.3} ms\n\
         throughput       {:.1} GFlop/s ({:.1} GB/s effective)\n\
         compute/memory   {:.2} ms / {:.2} ms\n\
         DRAM traffic     {:.1} MB   OPM traffic {:.1} MB\n\
         package power    {:.1} W    DRAM power  {:.1} W",
        kernel.name(),
        PlatformSpec::for_machine(machine).name,
        config.label(),
        prof.footprint / MIB,
        est.time_ns / 1e6,
        est.gflops,
        est.bandwidth_gbs,
        est.compute_ns / 1e6,
        est.memory_ns / 1e6,
        est.dram_bytes / MIB,
        est.opm_bytes / MIB,
        power.package_w,
        power.dram_w,
    ))
}

fn cmd_recommend(args: &Args) -> Result<String, String> {
    let fp = args.get_f64("footprint-gib", f64::NAN);
    if fp.is_nan() {
        return Err("recommend requires --footprint-gib".into());
    }
    let hot = args.get_f64("hot-gib", fp);
    let w = Workload {
        footprint: fp * GIB,
        hot_set: hot * GIB,
        latency_bound: args.get_flag("latency-bound"),
    };
    Ok(format!(
        "recommended MCDRAM mode: {:?}\n{}",
        recommend_mcdram(&w),
        explain_mcdram(&w)
    ))
}

fn cmd_stepping(args: &Args) -> Result<String, String> {
    let config = parse_config(
        args.options
            .get("config")
            .ok_or("stepping requires --config")?,
    )
    .ok_or("unknown config label")?;
    let mut kernel = SweepKernel::default();
    kernel.ai = args.get_f64("ai", kernel.ai);
    if config.machine() == Machine::Knl {
        kernel.threads = 256;
    }
    let samples = args.get_usize("samples", 32);
    let (lo, hi) = match config.machine() {
        Machine::Broadwell => (256.0 * 1024.0, 8.0 * GIB),
        Machine::Knl => (1.0 * MIB, 64.0 * GIB),
    };
    let curve = stepping_curve(config, kernel, lo, hi, samples);
    let mut out = String::from("footprint_mb,gflops\n");
    for (fp, g) in &curve.points {
        out.push_str(&format!("{:.3},{:.3}\n", fp / MIB, g));
    }
    Ok(out)
}

fn cmd_corpus(args: &Args) -> Result<String, String> {
    if let Some(dir) = args.options.get("dir") {
        return cmd_corpus_dir(std::path::Path::new(dir));
    }
    let count = args.get_usize("count", 10);
    let specs = opm_sparse::corpus(count);
    match args.options.get("index") {
        Some(i) => {
            let i: usize = i.parse().map_err(|_| "--index expects an integer")?;
            let spec = specs.get(i).ok_or("index out of range")?;
            let est = spec.estimate();
            Ok(format!(
                "corpus[{i}]: {} rows={} nnz~{} span~{:.0} levels~{:.0}",
                spec.kind.label(),
                est.rows,
                est.nnz,
                est.avg_col_span,
                est.levels
            ))
        }
        None => {
            let mut out = String::from("index,kind,rows,nnz,span,levels\n");
            for (i, spec) in specs.iter().enumerate() {
                let est = spec.estimate();
                out.push_str(&format!(
                    "{i},{},{},{},{:.0},{:.0}\n",
                    spec.kind.label(),
                    est.rows,
                    est.nnz,
                    est.avg_col_span,
                    est.levels
                ));
            }
            Ok(out)
        }
    }
}

/// `opm bench`: the memsim/engine hot-path speed program (see
/// [`crate::bench_engine`]).
fn cmd_bench(args: &Args) -> Result<String, String> {
    // A typo'd flag must not silently run the full harness and
    // overwrite the tracked BENCH_engine.json baseline.
    for key in args.options.keys() {
        if !matches!(
            key.as_str(),
            "smoke" | "no-campaign" | "out" | "compare" | "fail-on-regression"
        ) {
            return Err(format!("bench: unknown option --{key}\n{HELP}"));
        }
    }
    let out = match args.options.get("out") {
        // The parser stores "true" for a valueless flag, so a bare
        // `--out` (path swallowed or missing) is indistinguishable from
        // `--out true` — reject both rather than write a file `true`.
        Some(v) if v == "true" => return Err("bench: --out needs a path".to_string()),
        Some(v) => std::path::PathBuf::from(v),
        None => std::path::PathBuf::from(crate::bench_engine::DEFAULT_OUT),
    };
    // Parse (and read) the baseline before the harness runs: a bad path
    // should fail in milliseconds, not after minutes of measurement.
    let baseline = match args.options.get("compare") {
        Some(v) if v == "true" => return Err("bench: --compare needs a baseline path".to_string()),
        Some(v) => {
            let text = std::fs::read_to_string(v)
                .map_err(|e| format!("bench: reading baseline {v}: {e}"))?;
            Some((
                v.clone(),
                crate::compare::parse_baseline(&text).map_err(|e| format!("bench: {v}: {e}"))?,
            ))
        }
        None => None,
    };
    if args.get_flag("fail-on-regression") && baseline.is_none() {
        return Err("bench: --fail-on-regression needs --compare <baseline.json>".to_string());
    }
    let opts = crate::bench_engine::BenchOptions {
        smoke: args.get_flag("smoke"),
        campaign: !args.get_flag("no-campaign"),
        out: Some(out),
    };
    let report = crate::bench_engine::run_bench(&opts);
    let out = opts.out.as_deref().expect("out path set above");
    let mut text = format!("{}\nwrote {}", report.summary(), out.display());
    if let Some((path, baseline)) = baseline {
        let deltas = crate::compare::compare(&report, &baseline);
        let (table, regressions) = crate::compare::render(&deltas);
        text.push_str(&format!("\n\nvs baseline {path}:\n{table}"));
        if !regressions.is_empty() && args.get_flag("fail-on-regression") {
            return Err(format!(
                "{text}\nbench: {} metric(s) regressed >{:.0}%: {}",
                regressions.len(),
                100.0 * crate::compare::REGRESSION_THRESHOLD,
                regressions.join(", ")
            ));
        }
    }
    Ok(text)
}

/// `opm top`: render the run dashboard from a telemetry JSONL trace
/// (see [`crate::top`]), or — with `--campaign <dir>` — the shard
/// liveness table of a supervised campaign. `--follow` polls until the
/// run finishes.
fn cmd_top(args: &Args) -> Result<String, String> {
    let follow = args.get_flag("follow");
    let interval = args.get_usize("interval-ms", 500).max(50) as u64;
    if let Some(campaign) = args.options.get("campaign") {
        let campaign = std::path::PathBuf::from(campaign);
        loop {
            let view = crate::top::campaign_view(&campaign)?;
            if !follow || view.finished() {
                return Ok(crate::top::render_campaign(&view));
            }
            print!("\x1b[2J\x1b[H{}", crate::top::render_campaign(&view));
            let _ = std::io::Write::flush(&mut std::io::stdout());
            std::thread::sleep(std::time::Duration::from_millis(interval));
        }
    }
    let dir = args
        .options
        .get("dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(crate::telemetry::telemetry_dir);
    let path = match args.options.get("run") {
        Some(id) => dir.join(format!("{id}.jsonl")),
        None => crate::top::latest_trace(&dir)
            .ok_or_else(|| format!("no .jsonl traces under {}", dir.display()))?,
    };
    loop {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let snap = crate::top::parse_trace(&text);
        if !follow || snap.finished {
            return Ok(format!(
                "trace {}\n{}",
                path.display(),
                crate::top::render(&snap)
            ));
        }
        // Live mode: repaint in place, then poll again.
        print!("\x1b[2J\x1b[H{}", crate::top::render(&snap));
        let _ = std::io::Write::flush(&mut std::io::stdout());
        std::thread::sleep(std::time::Duration::from_millis(interval));
    }
}

/// `opm corpus --dir <path>`: quarantining directory load (see
/// [`crate::corpus`]).
fn cmd_corpus_dir(dir: &std::path::Path) -> Result<String, String> {
    let engine = opm_kernels::Engine::global();
    let load = crate::corpus::load_corpus_dir(engine, dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let manifest = load
        .write_manifest()
        .map_err(|e| format!("writing quarantine manifest: {e}"))?;
    let mut out = String::new();
    out.push_str(&format!(
        "loaded {} matrices, quarantined {} (manifest: {})\n",
        load.loaded.len(),
        load.quarantined.len(),
        manifest.display(),
    ));
    for (stem, m) in &load.loaded {
        out.push_str(&format!(
            "  ok   {stem}: {}x{} nnz={}\n",
            m.rows,
            m.cols,
            m.nnz()
        ));
    }
    for q in &load.quarantined {
        out.push_str(&format!(
            "  QUAR {} ({} attempt(s)): {}\n",
            q.path.display(),
            q.attempts,
            q.reason
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(cmd: &str) -> Result<String, String> {
        run(&cmd.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn bench_rejects_unknown_options_and_bare_out() {
        // A typo'd flag must not run the harness and overwrite the
        // tracked BENCH_engine.json; a valueless --out must not write a
        // file literally named "true".
        let err = run_str("bench --bogus").unwrap_err();
        assert!(err.contains("unknown option --bogus"), "{err}");
        let err = run_str("bench --out").unwrap_err();
        assert!(err.contains("--out needs a path"), "{err}");
    }

    #[test]
    fn bench_compare_validates_before_running() {
        // All of these must fail fast, without running the harness.
        let err = run_str("bench --compare").unwrap_err();
        assert!(err.contains("--compare needs a baseline path"), "{err}");
        let err = run_str("bench --compare /nonexistent/baseline.json").unwrap_err();
        assert!(err.contains("reading baseline"), "{err}");
        let err = run_str("bench --fail-on-regression").unwrap_err();
        assert!(err.contains("needs --compare"), "{err}");
        // A non-bench JSON document is rejected as a baseline.
        let p = std::env::temp_dir().join(format!("opm_cli_baseline_{}.json", std::process::id()));
        std::fs::write(&p, "{\"schema\": \"something-else\"}").unwrap();
        let err = run_str(&format!("bench --compare {}", p.display())).unwrap_err();
        assert!(err.contains("not an opm-bench-engine/v1"), "{err}");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn parse_args_handles_flags_and_values() {
        let a = parse_args(&[
            "model".into(),
            "--kernel".into(),
            "gemm".into(),
            "--latency-bound".into(),
        ]);
        assert_eq!(a.positional, vec!["model"]);
        assert_eq!(a.options.get("kernel").unwrap(), "gemm");
        assert!(a.get_flag("latency-bound"));
    }

    #[test]
    fn model_command_reports_throughput() {
        let out = run_str("model --kernel gemm --config brd-edram --n 8192 --tile 384").unwrap();
        assert!(out.contains("GFlop/s"), "{out}");
        assert!(out.contains("Broadwell"));
    }

    #[test]
    fn model_requires_kernel_and_config() {
        assert!(run_str("model --config brd-edram").is_err());
        assert!(run_str("model --kernel gemm").is_err());
        assert!(run_str("model --kernel gemm --config nope").is_err());
    }

    #[test]
    fn recommend_command() {
        let out = run_str("recommend --footprint-gib 40 --hot-gib 4").unwrap();
        assert!(out.contains("Hybrid"), "{out}");
        let out = run_str("recommend --footprint-gib 8 --latency-bound").unwrap();
        assert!(out.contains("Off"), "{out}");
    }

    #[test]
    fn stepping_command_emits_csv() {
        let out = run_str("stepping --config knl-flat --samples 8").unwrap();
        assert_eq!(out.lines().count(), 9);
        assert!(out.starts_with("footprint_mb,gflops"));
    }

    #[test]
    fn corpus_command_lists_and_indexes() {
        let out = run_str("corpus --count 5").unwrap();
        assert_eq!(out.lines().count(), 6);
        let one = run_str("corpus --count 5 --index 2").unwrap();
        assert!(one.contains("corpus[2]"));
        assert!(run_str("corpus --count 5 --index 9").is_err());
    }

    #[test]
    fn corpus_dir_quarantines_and_reports() {
        let _lock = crate::TEST_ENV_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!("opm_cli_corpus_{}", std::process::id()));
        let results = dir.join("results");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("good.mtx"),
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n",
        )
        .unwrap();
        std::fs::write(dir.join("bad.mtx"), "not a matrix at all\n").unwrap();
        std::env::set_var("OPM_RESULTS", &results);
        let out = run_str(&format!("corpus --dir {}", dir.display())).unwrap();
        std::env::remove_var("OPM_RESULTS");
        assert!(out.contains("loaded 1 matrices, quarantined 1"), "{out}");
        assert!(out.contains("ok   good"), "{out}");
        assert!(out.contains("QUAR"), "{out}");
        assert!(results.join("quarantine_manifest.csv").exists());
        assert!(run_str("corpus --dir /nonexistent/dir").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn top_command_renders_a_trace() {
        let dir = std::env::temp_dir().join(format!("opm_cli_top_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(run_str(&format!("top --dir {}", dir.display())).is_err());
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("ci.jsonl"),
            concat!(
                "{\"name\":\"run_start\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":1,\"s\":\"g\",\"args\":{\"run\":\"ci\",\"mode\":\"full\"}}\n",
                "{\"name\":\"fig12_stream_broadwell\",\"cat\":\"figure\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":1,\"args\":{\"path\":\"fig12_stream_broadwell\"}}\n",
                "{\"name\":\"fig12_stream_broadwell\",\"cat\":\"figure\",\"ph\":\"E\",\"ts\":90,\"pid\":1,\"tid\":1,\"args\":{\"path\":\"fig12_stream_broadwell\",\"status\":\"ok\",\"points\":\"42\",\"failures\":\"0\"}}\n",
                "{\"name\":\"run_end\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":100,\"pid\":1,\"tid\":1,\"s\":\"g\",\"args\":{}}\n",
            ),
        )
        .unwrap();
        let out = run_str(&format!("top --dir {}", dir.display())).unwrap();
        assert!(out.contains("run ci (telemetry full) — finished"), "{out}");
        assert!(out.contains("figures: 1 done / 1 seen, 0 failed"), "{out}");
        // --follow terminates immediately on a finished trace.
        let followed = run_str(&format!("top --dir {} --run ci --follow", dir.display())).unwrap();
        assert!(followed.contains("finished"), "{followed}");
        assert!(run_str(&format!("top --dir {} --run missing", dir.display())).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_str("help").unwrap().contains("USAGE"));
        assert!(run_str("frobnicate").is_err());
    }

    #[test]
    fn every_kernel_and_config_parses() {
        for k in KernelId::ALL {
            assert_eq!(parse_kernel(k.name()), Some(k));
        }
        for c in OpmConfig::broadwell_modes()
            .into_iter()
            .chain(OpmConfig::knl_modes())
        {
            assert_eq!(parse_config(c.label()), Some(c));
        }
        assert_eq!(parse_kernel("nope"), None);
    }

    #[test]
    fn model_runs_for_every_kernel_on_both_machines() {
        for k in KernelId::ALL {
            for cfg in ["brd-edram", "knl-flat"] {
                let cmd = format!("model --kernel {} --config {cfg}", k.name());
                let out = run_str(&cmd).unwrap_or_else(|e| panic!("{cmd}: {e}"));
                assert!(out.contains("GFlop/s"));
            }
        }
    }
}
