//! # opm-bench
//!
//! The figure/table regeneration harness: shared sweep plumbing used by the
//! per-figure binaries (`fig01_gemm_pdf` … `table5_mcdram_summary`) and the
//! Criterion microbenchmarks. Every binary writes CSV series (and aligned
//! text tables) under `results/` (override with `OPM_RESULTS`).

#![warn(missing_docs)]

use opm_core::perf::PerfModel;
use opm_core::platform::{Machine, OpmConfig, PlatformSpec};
use opm_core::power::PowerModel;
use opm_core::profile::AccessProfile;
use opm_core::report::Series;
use opm_core::units::GIB;
use opm_kernels::engine::Engine;
use opm_kernels::registry::KernelId;
use opm_kernels::sweeps::{
    cholesky_sweep, fft_curve, gemm_sweep, paper_dense_sizes, paper_dense_tiles, paper_fft_sizes,
    paper_stencil_grids, paper_stream_footprints, sparse_sweep, stencil_curve, stream_curve,
    SparseKernelId,
};
use opm_sparse::gen::{corpus, MatrixSpec, PAPER_CORPUS_SIZE};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Output directory for results (`OPM_RESULTS` env override, default
/// `results/`).
pub fn out_dir() -> PathBuf {
    opm_core::config::Config::from_env_or_die().results_dir
}

/// Monotonic count of CSV rows written through [`emit`] by this process.
/// Figures that never run an engine stage (pure model evaluations like
/// `fig06_stepping_model`) are measured by the rows they produce:
/// [`manifest::run_figures`] snapshots this counter around each figure so
/// every campaign case reports a real item count.
static EMITTED_ROWS: AtomicU64 = AtomicU64::new(0);

/// Current [`emit`] row-count snapshot (monotonic within the process).
pub fn emitted_rows() -> u64 {
    EMITTED_ROWS.load(Ordering::Relaxed)
}

/// Write a series and report the path on stdout.
pub fn emit(series: &Series, name: &str) {
    EMITTED_ROWS.fetch_add(series.rows.len() as u64, Ordering::Relaxed);
    let path = series
        .write_csv(out_dir(), name)
        .unwrap_or_else(|e| panic!("writing {name}: {e}"));
    println!("wrote {}", path.display());
}

/// Number of corpus matrices swept by the sparse harness binaries. The
/// paper's full 968 is the default; set `OPM_CORPUS` to shrink for smoke
/// runs, or `OPM_REDUCED=1` for the reduced-grid default of 48.
pub fn corpus_size() -> usize {
    match opm_core::config::Config::from_env_or_die().corpus {
        Some(n) => n,
        None if Engine::global().config().reduced => REDUCED_CORPUS_SIZE,
        None => PAPER_CORPUS_SIZE,
    }
}

/// Corpus size used when `OPM_REDUCED` is on and `OPM_CORPUS` is unset.
pub const REDUCED_CORPUS_SIZE: usize = 48;

/// The corpus specs used by all sparse harness binaries.
pub fn harness_corpus() -> Vec<MatrixSpec> {
    corpus(corpus_size())
}

/// Thin a grid to roughly `1/stride` of its points, always keeping the
/// first and last (the qualitative features the figures assert — capacity
/// cliffs, plateaus — live at the extremes).
fn thin<T: Clone>(grid: &[T], stride: usize) -> Vec<T> {
    if grid.len() <= 2 || stride <= 1 {
        return grid.to_vec();
    }
    let mut out: Vec<T> = grid.iter().step_by(stride).cloned().collect();
    if !(grid.len() - 1).is_multiple_of(stride) {
        out.push(grid[grid.len() - 1].clone());
    }
    out
}

/// Dense matrix orders used by the harness: the paper's Appendix A grid,
/// or a thinned version of it under `OPM_REDUCED`.
pub fn harness_dense_sizes(machine: Machine) -> Vec<usize> {
    let full = paper_dense_sizes(machine);
    if Engine::global().config().reduced {
        thin(&full, 4)
    } else {
        full
    }
}

/// Dense tile sizes used by the harness (paper grid, or thinned).
pub fn harness_dense_tiles() -> Vec<usize> {
    let full = paper_dense_tiles();
    if Engine::global().config().reduced {
        thin(&full, 4)
    } else {
        full
    }
}

/// Stream footprint samples used by the harness. The span is never
/// reduced — only the sampling density — so the OPM capacity cliff stays
/// in frame.
pub fn harness_stream_footprints(machine: Machine, samples: usize) -> Vec<f64> {
    let n = if Engine::global().config().reduced {
        (samples / 3).max(12)
    } else {
        samples
    };
    paper_stream_footprints(machine, n)
}

/// Stencil grids used by the harness (paper doubling sweep, or thinned).
pub fn harness_stencil_grids(machine: Machine) -> Vec<(usize, usize, usize)> {
    let full = paper_stencil_grids(machine);
    if Engine::global().config().reduced {
        thin(&full, 2)
    } else {
        full
    }
}

/// FFT sizes used by the harness (paper grid, or thinned; the last size
/// is kept so the flat-mode capacity cliff on KNL stays visible).
pub fn harness_fft_sizes(machine: Machine) -> Vec<usize> {
    let full = paper_fft_sizes(machine);
    if Engine::global().config().reduced {
        thin(&full, 4)
    } else {
        full
    }
}

/// The representative mid-size workload profile for one kernel on one
/// machine — used by the power figures (26/27) and the Eq. 1 energy
/// analysis, where the paper reports one averaged bar per kernel.
pub fn representative_profile(kernel: KernelId, machine: Machine) -> AccessProfile {
    let threads = kernel.threads(machine);
    let cores = PlatformSpec::for_machine(machine).cores;
    let knl = machine == Machine::Knl;
    match kernel {
        KernelId::Gemm => {
            let (n, tile) = if knl { (16384, 1024) } else { (8192, 384) };
            opm_dense::gemm_profile(n, tile, threads, cores)
        }
        KernelId::Cholesky => {
            let (n, tile) = if knl { (16384, 1024) } else { (8192, 384) };
            opm_dense::cholesky_profile(n, tile, threads, cores)
        }
        KernelId::Spmv => opm_sparse::spmv_profile(1_000_000, 15_000_000, 400_000.0, threads),
        KernelId::Sptrans => opm_sparse::sptrans_profile(1_000_000, 15_000_000, threads),
        KernelId::Sptrsv => {
            opm_sparse::sptrsv_profile(1_000_000, 15_000_000, 400_000.0, 300.0, threads)
        }
        KernelId::Fft => opm_fft::fft3d_profile(if knl { 704 } else { 400 }, threads, cores),
        KernelId::Stencil => {
            let g = if knl {
                (1024, 1024, 512)
            } else {
                (512, 512, 256)
            };
            opm_stencil::stencil_profile(g.0, g.1, g.2, (64, 64, 96), threads, cores)
        }
        KernelId::Stream => {
            let n = (2.0 * GIB / 24.0) as usize;
            opm_stencil::stream_profile(n, 4, threads)
        }
    }
}

/// The full sweep of modeled throughputs for one kernel under one
/// configuration, aligned across configurations of the same machine (used
/// by Tables 4 and 5). Runs on the global [`Engine`], so profiles computed
/// for the baseline configuration are reused by every OPM configuration of
/// the same machine.
pub fn kernel_sweep_gflops(kernel: KernelId, config: OpmConfig) -> Vec<f64> {
    let machine = config.machine();
    match kernel {
        KernelId::Gemm => gemm_sweep(
            config,
            &harness_dense_sizes(machine),
            &harness_dense_tiles(),
        )
        .into_iter()
        .map(|p| p.gflops)
        .collect(),
        KernelId::Cholesky => cholesky_sweep(
            config,
            &harness_dense_sizes(machine),
            &harness_dense_tiles(),
        )
        .into_iter()
        .map(|p| p.gflops)
        .collect(),
        KernelId::Spmv => sparse_sweep(config, SparseKernelId::Spmv, &harness_corpus())
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Sptrans => sparse_sweep(config, SparseKernelId::Sptrans, &harness_corpus())
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Sptrsv => sparse_sweep(config, SparseKernelId::Sptrsv, &harness_corpus())
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Fft => fft_curve(config, &harness_fft_sizes(machine))
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Stencil => stencil_curve(config, &harness_stencil_grids(machine))
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Stream => stream_curve(config, &harness_stream_footprints(machine, 48))
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
    }
}

/// Average package/DRAM power of a kernel's representative workload under a
/// configuration.
pub fn kernel_power(kernel: KernelId, config: OpmConfig) -> opm_core::power::PowerSample {
    let machine = config.machine();
    let prof = representative_profile(kernel, machine);
    let est = PerfModel::for_config(config).evaluate(&prof);
    PowerModel::for_machine(machine).sample(&est, config, prof.total_flops(), prof.total_bytes())
}

/// Log-binned 2D aggregation for the sparse structure heat maps
/// (Figs. 9–11 bottom and 20–22): mean throughput per (rows, nnz) cell.
pub fn structure_heatmap(
    points: &[(usize, usize, f64)], // (rows, nnz, gflops)
    bins: usize,
) -> Series {
    assert!(bins >= 2 && !points.is_empty());
    let lg = |v: usize| (v.max(1) as f64).log10();
    let (mut rmin, mut rmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut nmin, mut nmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(r, n, _) in points {
        rmin = rmin.min(lg(r));
        rmax = rmax.max(lg(r));
        nmin = nmin.min(lg(n));
        nmax = nmax.max(lg(n));
    }
    let rstep = ((rmax - rmin) / bins as f64).max(1e-9);
    let nstep = ((nmax - nmin) / bins as f64).max(1e-9);
    let mut sums = vec![0.0f64; bins * bins];
    let mut counts = vec![0usize; bins * bins];
    for &(r, n, g) in points {
        let i = (((lg(r) - rmin) / rstep) as usize).min(bins - 1);
        let j = (((lg(n) - nmin) / nstep) as usize).min(bins - 1);
        sums[i * bins + j] += g;
        counts[i * bins + j] += 1;
    }
    let mut s = Series::new(vec!["log10_rows", "log10_nnz", "mean_gflops", "count"]);
    for i in 0..bins {
        for j in 0..bins {
            let c = counts[i * bins + j];
            if c > 0 {
                s.push(vec![
                    rmin + (i as f64 + 0.5) * rstep,
                    nmin + (j as f64 + 0.5) * nstep,
                    sums[i * bins + j] / c as f64,
                    c as f64,
                ]);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_core::platform::{EdramMode, McdramMode};

    #[test]
    fn representative_profiles_validate() {
        for kernel in KernelId::ALL {
            for machine in [Machine::Broadwell, Machine::Knl] {
                representative_profile(kernel, machine)
                    .validate()
                    .unwrap_or_else(|e| panic!("{kernel:?}/{machine:?}: {e}"));
            }
        }
    }

    #[test]
    fn power_is_higher_with_edram_on_average() {
        let mut deltas = Vec::new();
        for kernel in KernelId::ALL {
            let on = kernel_power(kernel, OpmConfig::Broadwell(EdramMode::On));
            let off = kernel_power(kernel, OpmConfig::Broadwell(EdramMode::Off));
            deltas.push(on.package_w - off.package_w);
        }
        let avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
        // Paper §5.2: average ~5.6 W increase on Broadwell.
        assert!(avg > 0.5 && avg < 15.0, "avg delta {avg}");
    }

    #[test]
    fn mcdram_flat_can_reduce_ddr_power() {
        let flat = kernel_power(KernelId::Stencil, OpmConfig::Knl(McdramMode::Flat));
        let ddr = kernel_power(KernelId::Stencil, OpmConfig::Knl(McdramMode::Off));
        assert!(flat.dram_w < ddr.dram_w);
    }

    #[test]
    fn structure_heatmap_bins_cover_points() {
        let pts = vec![
            (1000usize, 200_000usize, 5.0),
            (1000, 200_000, 7.0),
            (1_000_000, 20_000_000, 1.0),
        ];
        let s = structure_heatmap(&pts, 4);
        let total: f64 = s.rows.iter().map(|r| r[3]).sum();
        assert_eq!(total, 3.0);
        // Mean of the co-binned points.
        assert!(s.rows.iter().any(|r| (r[2] - 6.0).abs() < 1e-9));
    }

    #[test]
    fn corpus_size_default_is_paper_sized() {
        if std::env::var("OPM_CORPUS").is_err() {
            assert_eq!(corpus_size(), 968);
        }
    }
}

pub mod ablation;
pub mod bench_engine;
pub mod checkpoint;
pub mod cli;
pub mod compare;
pub mod corpus;
pub mod extensions;
pub mod figures;
pub mod loadgen;
pub mod manifest;
pub mod merge;
pub mod plot;
pub mod serve;
pub mod shard;
pub mod supervisor;
pub mod telemetry;
pub mod top;

/// Serializes lib tests that mutate process environment (`OPM_RESULTS`).
#[cfg(test)]
pub(crate) static TEST_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
