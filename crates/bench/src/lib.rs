//! # opm-bench
//!
//! The figure/table regeneration harness: shared sweep plumbing used by the
//! per-figure binaries (`fig01_gemm_pdf` … `table5_mcdram_summary`) and the
//! Criterion microbenchmarks. Every binary writes CSV series (and aligned
//! text tables) under `results/` (override with `OPM_RESULTS`).

#![warn(missing_docs)]

use opm_core::perf::PerfModel;
use opm_core::platform::{Machine, OpmConfig, PlatformSpec};
use opm_core::power::PowerModel;
use opm_core::profile::AccessProfile;
use opm_core::report::Series;
use opm_core::units::GIB;
use opm_kernels::registry::KernelId;
use opm_kernels::sweeps::{
    cholesky_sweep, fft_curve, gemm_sweep, paper_dense_sizes, paper_dense_tiles,
    paper_fft_sizes, paper_stencil_grids, paper_stream_footprints, sparse_sweep, stencil_curve,
    stream_curve, SparseKernelId,
};
use opm_sparse::gen::{corpus, MatrixSpec, PAPER_CORPUS_SIZE};
use std::path::PathBuf;

/// Output directory for results (`OPM_RESULTS` env override, default
/// `results/`).
pub fn out_dir() -> PathBuf {
    std::env::var("OPM_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Write a series and report the path on stdout.
pub fn emit(series: &Series, name: &str) {
    let path = series
        .write_csv(out_dir(), name)
        .unwrap_or_else(|e| panic!("writing {name}: {e}"));
    println!("wrote {}", path.display());
}

/// Number of corpus matrices swept by the sparse harness binaries. The
/// paper's full 968 is the default; set `OPM_CORPUS` to shrink for smoke
/// runs.
pub fn corpus_size() -> usize {
    std::env::var("OPM_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(PAPER_CORPUS_SIZE)
}

/// The corpus specs used by all sparse harness binaries.
pub fn harness_corpus() -> Vec<MatrixSpec> {
    corpus(corpus_size())
}

/// The representative mid-size workload profile for one kernel on one
/// machine — used by the power figures (26/27) and the Eq. 1 energy
/// analysis, where the paper reports one averaged bar per kernel.
pub fn representative_profile(kernel: KernelId, machine: Machine) -> AccessProfile {
    let threads = kernel.threads(machine);
    let cores = PlatformSpec::for_machine(machine).cores;
    let knl = machine == Machine::Knl;
    match kernel {
        KernelId::Gemm => {
            let (n, tile) = if knl { (16384, 1024) } else { (8192, 384) };
            opm_dense::gemm_profile(n, tile, threads, cores)
        }
        KernelId::Cholesky => {
            let (n, tile) = if knl { (16384, 1024) } else { (8192, 384) };
            opm_dense::cholesky_profile(n, tile, threads, cores)
        }
        KernelId::Spmv => opm_sparse::spmv_profile(1_000_000, 15_000_000, 400_000.0, threads),
        KernelId::Sptrans => opm_sparse::sptrans_profile(1_000_000, 15_000_000, threads),
        KernelId::Sptrsv => {
            opm_sparse::sptrsv_profile(1_000_000, 15_000_000, 400_000.0, 300.0, threads)
        }
        KernelId::Fft => opm_fft::fft3d_profile(if knl { 704 } else { 400 }, threads, cores),
        KernelId::Stencil => {
            let g = if knl { (1024, 1024, 512) } else { (512, 512, 256) };
            opm_stencil::stencil_profile(g.0, g.1, g.2, (64, 64, 96), threads, cores)
        }
        KernelId::Stream => {
            let n = (2.0 * GIB / 24.0) as usize;
            opm_stencil::stream_profile(n, 4, threads)
        }
    }
}

/// The full sweep of modeled throughputs for one kernel under one
/// configuration, aligned across configurations of the same machine (used
/// by Tables 4 and 5).
pub fn kernel_sweep_gflops(kernel: KernelId, config: OpmConfig) -> Vec<f64> {
    let machine = config.machine();
    match kernel {
        KernelId::Gemm => gemm_sweep(config, &paper_dense_sizes(machine), &paper_dense_tiles())
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Cholesky => {
            cholesky_sweep(config, &paper_dense_sizes(machine), &paper_dense_tiles())
                .into_iter()
                .map(|p| p.gflops)
                .collect()
        }
        KernelId::Spmv => sparse_sweep(config, SparseKernelId::Spmv, &harness_corpus())
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Sptrans => sparse_sweep(config, SparseKernelId::Sptrans, &harness_corpus())
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Sptrsv => sparse_sweep(config, SparseKernelId::Sptrsv, &harness_corpus())
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Fft => fft_curve(config, &paper_fft_sizes(machine))
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Stencil => stencil_curve(config, &paper_stencil_grids(machine))
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
        KernelId::Stream => stream_curve(config, &paper_stream_footprints(machine, 48))
            .into_iter()
            .map(|p| p.gflops)
            .collect(),
    }
}

/// Average package/DRAM power of a kernel's representative workload under a
/// configuration.
pub fn kernel_power(kernel: KernelId, config: OpmConfig) -> opm_core::power::PowerSample {
    let machine = config.machine();
    let prof = representative_profile(kernel, machine);
    let est = PerfModel::for_config(config).evaluate(&prof);
    PowerModel::for_machine(machine).sample(&est, config, prof.total_flops(), prof.total_bytes())
}

/// Log-binned 2D aggregation for the sparse structure heat maps
/// (Figs. 9–11 bottom and 20–22): mean throughput per (rows, nnz) cell.
pub fn structure_heatmap(
    points: &[(usize, usize, f64)], // (rows, nnz, gflops)
    bins: usize,
) -> Series {
    assert!(bins >= 2 && !points.is_empty());
    let lg = |v: usize| (v.max(1) as f64).log10();
    let (mut rmin, mut rmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut nmin, mut nmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(r, n, _) in points {
        rmin = rmin.min(lg(r));
        rmax = rmax.max(lg(r));
        nmin = nmin.min(lg(n));
        nmax = nmax.max(lg(n));
    }
    let rstep = ((rmax - rmin) / bins as f64).max(1e-9);
    let nstep = ((nmax - nmin) / bins as f64).max(1e-9);
    let mut sums = vec![0.0f64; bins * bins];
    let mut counts = vec![0usize; bins * bins];
    for &(r, n, g) in points {
        let i = (((lg(r) - rmin) / rstep) as usize).min(bins - 1);
        let j = (((lg(n) - nmin) / nstep) as usize).min(bins - 1);
        sums[i * bins + j] += g;
        counts[i * bins + j] += 1;
    }
    let mut s = Series::new(vec!["log10_rows", "log10_nnz", "mean_gflops", "count"]);
    for i in 0..bins {
        for j in 0..bins {
            let c = counts[i * bins + j];
            if c > 0 {
                s.push(vec![
                    rmin + (i as f64 + 0.5) * rstep,
                    nmin + (j as f64 + 0.5) * nstep,
                    sums[i * bins + j] / c as f64,
                    c as f64,
                ]);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_core::platform::{EdramMode, McdramMode};

    #[test]
    fn representative_profiles_validate() {
        for kernel in KernelId::ALL {
            for machine in [Machine::Broadwell, Machine::Knl] {
                representative_profile(kernel, machine)
                    .validate()
                    .unwrap_or_else(|e| panic!("{kernel:?}/{machine:?}: {e}"));
            }
        }
    }

    #[test]
    fn power_is_higher_with_edram_on_average() {
        let mut deltas = Vec::new();
        for kernel in KernelId::ALL {
            let on = kernel_power(kernel, OpmConfig::Broadwell(EdramMode::On));
            let off = kernel_power(kernel, OpmConfig::Broadwell(EdramMode::Off));
            deltas.push(on.package_w - off.package_w);
        }
        let avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
        // Paper §5.2: average ~5.6 W increase on Broadwell.
        assert!(avg > 0.5 && avg < 15.0, "avg delta {avg}");
    }

    #[test]
    fn mcdram_flat_can_reduce_ddr_power() {
        let flat = kernel_power(KernelId::Stencil, OpmConfig::Knl(McdramMode::Flat));
        let ddr = kernel_power(KernelId::Stencil, OpmConfig::Knl(McdramMode::Off));
        assert!(flat.dram_w < ddr.dram_w);
    }

    #[test]
    fn structure_heatmap_bins_cover_points() {
        let pts = vec![
            (1000usize, 200_000usize, 5.0),
            (1000, 200_000, 7.0),
            (1_000_000, 20_000_000, 1.0),
        ];
        let s = structure_heatmap(&pts, 4);
        let total: f64 = s.rows.iter().map(|r| r[3]).sum();
        assert_eq!(total, 3.0);
        // Mean of the co-binned points.
        assert!(s.rows.iter().any(|r| (r[2] - 6.0).abs() < 1e-9));
    }

    #[test]
    fn corpus_size_default_is_paper_sized() {
        if std::env::var("OPM_CORPUS").is_err() {
            assert_eq!(corpus_size(), 968);
        }
    }
}

pub mod figures;
pub mod ablation;
pub mod cli;
pub mod extensions;
pub mod plot;
