//! Implementations of every figure/table regeneration (see DESIGN.md's
//! per-experiment index). Each function writes one or more CSV series under
//! [`crate::out_dir`] and prints a short console summary; the binaries in
//! `src/bin/` are thin wrappers.

use crate::{
    emit, harness_corpus, harness_dense_sizes, harness_dense_tiles, harness_fft_sizes,
    harness_stencil_grids, harness_stream_footprints, kernel_power, kernel_sweep_gflops, out_dir,
    structure_heatmap,
};
use opm_core::perf::PerfModel;
use opm_core::platform::{EdramMode, Machine, McdramMode, OpmConfig, PlatformSpec};
use opm_core::power::{breakeven_gain, opm_saves_energy};
use opm_core::profile::ProfileKey;
use opm_core::report::{Series, TextTable};
use opm_core::roofline::Roofline;
use opm_core::stats::{gaussian_kde, linspace, silverman_bandwidth, summarize};
use opm_core::stepping::{
    schematic, schematic_hw_tuning, stepping_curve, SchematicLevel, SweepKernel,
};
use opm_core::units::{GIB, MIB};
use opm_kernels::engine::Engine;
use opm_kernels::registry::KernelId;
use opm_kernels::summary::{cross_kernel, summarize_pair, SummaryRow};
use opm_kernels::sweeps::{
    cholesky_sweep, fft_curve, gemm_sweep, sparse_sweep, stencil_curve, stream_curve, CurvePoint,
    SparseKernelId,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fig. 1: probability density of achievable GEMM throughput over 1024
/// random (size, tile) samples, with and without eDRAM.
pub fn fig01_gemm_pdf() {
    let mut rng = StdRng::seed_from_u64(2017);
    let sizes = harness_dense_sizes(Machine::Broadwell);
    let tiles = harness_dense_tiles();
    let samples: Vec<(usize, usize)> = (0..1024)
        .map(|_| {
            (
                sizes[rng.random_range(0..sizes.len())],
                tiles[rng.random_range(0..tiles.len())],
            )
        })
        .collect();
    let eval = |config: OpmConfig| -> Vec<f64> {
        let model = PerfModel::for_config(config);
        let engine = Engine::global();
        let label = format!("gemm_pdf/{}", config.label());
        engine.run_stage(&label, |eng| {
            let gflops = eng.par_map_isolated(
                &label,
                &samples,
                |&(n, tile)| {
                    let prof = eng.profile(
                        ProfileKey::Gemm {
                            n,
                            tile,
                            threads: 4,
                            cores: 4,
                        },
                        || opm_dense::gemm_profile(n, tile, 4, 4),
                    );
                    model.evaluate(&prof).gflops
                },
                |_, _| f64::NAN,
            );
            let points = gflops.len();
            (gflops, points)
        })
    };
    // Quarantined sample points come back as NaN; dropping them keeps the
    // density estimate over the surviving samples (and is a no-op in a
    // fault-free run).
    let finite = |v: Vec<f64>| -> Vec<f64> { v.into_iter().filter(|g| g.is_finite()).collect() };
    let off = finite(eval(OpmConfig::Broadwell(EdramMode::Off)));
    let on = finite(eval(OpmConfig::Broadwell(EdramMode::On)));
    let grid = linspace(0.0, 240.0, 481);
    let bw = silverman_bandwidth(&off).max(silverman_bandwidth(&on));
    let kde_off = gaussian_kde(&off, &grid, bw);
    let kde_on = gaussian_kde(&on, &grid, bw);
    let mut s = Series::new(vec!["gflops", "pdf_no_edram", "pdf_edram"]);
    for ((x, a), (_, b)) in kde_off.into_iter().zip(kde_on) {
        s.push(vec![x, a, b]);
    }
    emit(&s, "fig01_gemm_pdf");
    let so = summarize(&off);
    let sn = summarize(&on);
    let near = |v: &[f64], peak: f64| {
        v.iter().filter(|&&g| g > 0.9 * peak).count() as f64 / v.len() as f64
    };
    println!(
        "peak: {:.1} -> {:.1} GFlop/s; mean {:.1} -> {:.1}; >=90% peak: {:.1}% -> {:.1}%",
        so.max,
        sn.max,
        so.mean,
        sn.mean,
        100.0 * near(&off, so.max),
        100.0 * near(&on, so.max)
    );
}

/// Fig. 4: arithmetic-intensity spectrum of the eight kernels.
pub fn fig04_ai_spectrum() {
    let mut s = Series::new(vec!["kernel_index", "ai"]);
    let mut t = TextTable::new(vec!["Kernel", "Class", "AI (flops/byte)"]);
    for (i, k) in KernelId::ALL.iter().enumerate() {
        s.push(vec![i as f64, k.reference_ai()]);
        t.push(vec![
            k.name().to_string(),
            format!("{:?}", k.class()),
            format!("{:.4}", k.reference_ai()),
        ]);
    }
    emit(&s, "fig04_ai_spectrum");
    print!("{}", t.render());
}

/// Fig. 5: roofline charts for both machines, with and without the OPM
/// bandwidth ceiling.
pub fn fig05_roofline() {
    for machine in [Machine::Broadwell, Machine::Knl] {
        let p = PlatformSpec::for_machine(machine);
        let r = Roofline::for_platform(&p);
        let mut s = Series::new(vec!["ai", "roof_opm", "roof_dram"]);
        let opm = r.sample(p.opm.name, 0.01, 256.0, 96);
        let dram = r.sample(p.dram.name, 0.01, 256.0, 96);
        for ((ai, a), (_, b)) in opm.into_iter().zip(dram) {
            s.push(vec![ai, a, b]);
        }
        let name = match machine {
            Machine::Broadwell => "fig05_roofline_broadwell",
            Machine::Knl => "fig05_roofline_knl",
        };
        emit(&s, name);
        let mut pts = Series::new(vec!["ai", "attainable_opm", "attainable_dram"]);
        for k in KernelId::ALL {
            let ai = k.reference_ai();
            pts.push(vec![
                ai,
                r.attainable(ai, p.opm.name),
                r.attainable(ai, p.dram.name),
            ]);
        }
        emit(&pts, &format!("{name}_kernels"));
    }
}

/// Fig. 6: the Stepping Model schematic (single- and multi-level).
pub fn fig06_stepping_model() {
    let single = [
        SchematicLevel {
            capacity: 1e6,
            bandwidth: 400.0,
            valley: 0.55,
        },
        SchematicLevel {
            capacity: 1e9,
            bandwidth: 30.0,
            valley: 1.0,
        },
    ];
    let multi = [
        SchematicLevel {
            capacity: 256e3,
            bandwidth: 800.0,
            valley: 0.7,
        },
        SchematicLevel {
            capacity: 6e6,
            bandwidth: 210.0,
            valley: 0.6,
        },
        SchematicLevel {
            capacity: 128e6,
            bandwidth: 102.0,
            valley: 0.8,
        },
        SchematicLevel {
            capacity: 16e9,
            bandwidth: 34.0,
            valley: 1.0,
        },
    ];
    let mut s = Series::new(vec!["footprint", "perf_single_cache"]);
    for (x, y) in schematic(&single, 1.0, 48) {
        s.push(vec![x, y]);
    }
    emit(&s, "fig06a_stepping_single");
    let mut s = Series::new(vec!["footprint", "perf_multi_level"]);
    for (x, y) in schematic(&multi, 1.0, 32) {
        s.push(vec![x, y]);
    }
    emit(&s, "fig06b_stepping_multi");
}

/// Figs. 7/8 (Broadwell) and 15/16 (KNL): dense kernel heat maps across
/// every OPM configuration of the machine.
pub fn dense_heatmap(kernel: KernelId, machine: Machine, name: &str) {
    assert!(matches!(kernel, KernelId::Gemm | KernelId::Cholesky));
    let sizes = harness_dense_sizes(machine);
    let tiles = harness_dense_tiles();
    let configs: Vec<OpmConfig> = match machine {
        Machine::Broadwell => OpmConfig::broadwell_modes().to_vec(),
        Machine::Knl => OpmConfig::knl_modes().to_vec(),
    };
    let mut columns = vec!["n".to_string(), "tile".to_string()];
    columns.extend(configs.iter().map(|c| format!("gflops_{}", c.label())));
    let mut s = Series::new(columns);
    let sweeps: Vec<Vec<opm_kernels::HeatPoint>> = configs
        .iter()
        .map(|&c| match kernel {
            KernelId::Gemm => gemm_sweep(c, &sizes, &tiles),
            _ => cholesky_sweep(c, &sizes, &tiles),
        })
        .collect();
    for i in 0..sweeps[0].len() {
        let mut row = vec![sweeps[0][i].n as f64, sweeps[0][i].tile as f64];
        row.extend(sweeps.iter().map(|sw| sw[i].gflops));
        s.push(row);
    }
    emit(&s, name);
    for (c, sw) in configs.iter().zip(&sweeps) {
        let peak = sw.iter().map(|p| p.gflops).fold(0.0, f64::max);
        println!("{}: peak {:.1} GFlop/s", c.label(), peak);
    }
}

/// Figs. 9–11 (Broadwell) and 17–19 (KNL): sparse kernel corpus scatter +
/// speedups + structure heat map.
pub fn sparse_figure(kernel: SparseKernelId, machine: Machine, name: &str) {
    let specs = harness_corpus();
    let configs: Vec<OpmConfig> = match machine {
        Machine::Broadwell => OpmConfig::broadwell_modes().to_vec(),
        Machine::Knl => OpmConfig::knl_modes().to_vec(),
    };
    let sweeps: Vec<Vec<opm_kernels::SparsePoint>> = configs
        .iter()
        .map(|&c| sparse_sweep(c, kernel, &specs))
        .collect();
    let mut columns = vec![
        "footprint_mb".to_string(),
        "rows".to_string(),
        "nnz".to_string(),
    ];
    columns.extend(configs.iter().map(|c| format!("gflops_{}", c.label())));
    let baseline = 0usize; // first config is the no-OPM baseline
    columns.extend(
        configs
            .iter()
            .skip(1)
            .map(|c| format!("speedup_{}", c.label())),
    );
    let mut s = Series::new(columns);
    for i in 0..specs.len() {
        let mut row = vec![
            sweeps[0][i].footprint / MIB,
            specs[i].rows as f64,
            specs[i].nnz_target as f64,
        ];
        row.extend(sweeps.iter().map(|sw| sw[i].gflops));
        let base = sweeps[baseline][i].gflops;
        row.extend(sweeps.iter().skip(1).map(|sw| sw[i].gflops / base));
        s.push(row);
    }
    emit(&s, name);
    // Structure heat map for the OPM-enabled configuration (index 1).
    let pts: Vec<(usize, usize, f64)> = specs
        .iter()
        .zip(&sweeps[1])
        .map(|(spec, p)| (spec.rows, spec.nnz_target, p.gflops))
        .collect();
    emit(&structure_heatmap(&pts, 16), &format!("{name}_structure"));
    for (c, sw) in configs.iter().zip(&sweeps) {
        let best = sw.iter().map(|p| p.gflops).fold(0.0, f64::max);
        println!(
            "{}: best {:.2} GFlop/s over {} matrices",
            c.label(),
            best,
            specs.len()
        );
    }
}

/// Figs. 20–22: KNL structure heat maps for all three sparse kernels
/// (one map per kernel; the paper collapses the MCDRAM modes, which behave
/// alike within the corpus footprints — we use flat mode).
pub fn fig20_22_knl_structure() {
    let specs = harness_corpus();
    for (kernel, name) in [
        (SparseKernelId::Spmv, "fig20_spmv_knl_structure"),
        (SparseKernelId::Sptrans, "fig21_sptrans_knl_structure"),
        (SparseKernelId::Sptrsv, "fig22_sptrsv_knl_structure"),
    ] {
        let sw = sparse_sweep(OpmConfig::Knl(McdramMode::Flat), kernel, &specs);
        let pts: Vec<(usize, usize, f64)> = specs
            .iter()
            .zip(&sw)
            .map(|(spec, p)| (spec.rows, spec.nnz_target, p.gflops))
            .collect();
        emit(&structure_heatmap(&pts, 16), name);
    }
}

/// Figs. 12–14 / 23–25: footprint/size curves for Stream, Stencil and FFT.
pub fn curve_figure(kernel: KernelId, machine: Machine, name: &str) {
    let configs: Vec<OpmConfig> = match machine {
        Machine::Broadwell => OpmConfig::broadwell_modes().to_vec(),
        Machine::Knl => OpmConfig::knl_modes().to_vec(),
    };
    let curves: Vec<Vec<CurvePoint>> = configs
        .iter()
        .map(|&c| match kernel {
            KernelId::Stream => stream_curve(c, &harness_stream_footprints(machine, 64)),
            KernelId::Stencil => stencil_curve(c, &harness_stencil_grids(machine)),
            KernelId::Fft => fft_curve(c, &harness_fft_sizes(machine)),
            _ => panic!("curve_figure only handles Stream/Stencil/FFT"),
        })
        .collect();
    let mut columns = vec!["footprint_mb".to_string()];
    columns.extend(configs.iter().map(|c| format!("gflops_{}", c.label())));
    let mut s = Series::new(columns);
    for i in 0..curves[0].len() {
        let mut row = vec![curves[0][i].footprint / MIB];
        row.extend(curves.iter().map(|cv| cv[i].gflops));
        s.push(row);
    }
    emit(&s, name);
    for (c, cv) in configs.iter().zip(&curves) {
        let peak = cv.iter().map(|p| p.gflops).fold(0.0, f64::max);
        println!("{}: peak {:.1} GFlop/s", c.label(), peak);
    }
}

/// Figs. 26/27: per-kernel package and DRAM power with the OPM off/on
/// (Broadwell: eDRAM off vs on; KNL: DDR-only vs flat MCDRAM), plus the
/// geometric-mean column the paper plots.
pub fn power_figure(machine: Machine, name: &str) {
    let (base, opm) = match machine {
        Machine::Broadwell => (
            OpmConfig::Broadwell(EdramMode::Off),
            OpmConfig::Broadwell(EdramMode::On),
        ),
        Machine::Knl => (
            OpmConfig::Knl(McdramMode::Off),
            OpmConfig::Knl(McdramMode::Flat),
        ),
    };
    let mut s = Series::new(vec![
        "kernel_index",
        "package_w_base",
        "package_w_opm",
        "dram_w_base",
        "dram_w_opm",
    ]);
    let mut t = TextTable::new(vec![
        "Kernel",
        "Pkg base",
        "Pkg OPM",
        "DRAM base",
        "DRAM OPM",
    ]);
    let mut pkg_base = Vec::new();
    let mut pkg_opm = Vec::new();
    for (i, k) in KernelId::ALL.iter().enumerate() {
        let b = kernel_power(*k, base);
        let o = kernel_power(*k, opm);
        s.push(vec![i as f64, b.package_w, o.package_w, b.dram_w, o.dram_w]);
        t.push(vec![
            k.name().to_string(),
            format!("{:.1}", b.package_w),
            format!("{:.1}", o.package_w),
            format!("{:.1}", b.dram_w),
            format!("{:.1}", o.dram_w),
        ]);
        pkg_base.push(b.package_w);
        pkg_opm.push(o.package_w);
    }
    let gm_base = opm_core::stats::geomean(&pkg_base);
    let gm_opm = opm_core::stats::geomean(&pkg_opm);
    s.push(vec![KernelId::ALL.len() as f64, gm_base, gm_opm, 0.0, 0.0]);
    t.push(vec![
        "GM".to_string(),
        format!("{gm_base:.1}"),
        format!("{gm_opm:.1}"),
        String::new(),
        String::new(),
    ]);
    emit(&s, name);
    print!("{}", t.render());
    println!(
        "average package power increase: {:.1} W ({:.1}%)",
        gm_opm - gm_base,
        100.0 * (gm_opm / gm_base - 1.0)
    );
}

/// Figs. 28/29: optimization-guideline curves from the measured Stepping
/// Model (eDRAM on/off on Broadwell; all four MCDRAM modes on KNL), plus
/// the performance-effective region.
pub fn fig28_29_guidelines() {
    let kernel = SweepKernel::default();
    let mut s = Series::new(vec!["footprint_mb", "gflops_no_edram", "gflops_edram"]);
    let off = stepping_curve(
        OpmConfig::Broadwell(EdramMode::Off),
        kernel,
        256.0 * 1024.0,
        8.0 * GIB,
        96,
    );
    let on = stepping_curve(
        OpmConfig::Broadwell(EdramMode::On),
        kernel,
        256.0 * 1024.0,
        8.0 * GIB,
        96,
    );
    for ((x, a), (_, b)) in off.points.iter().zip(&on.points) {
        s.push(vec![x / MIB, *a, *b]);
    }
    emit(&s, "fig28_edram_guideline");
    if let Some((lo, hi)) = on.effective_region(&off, 0.10) {
        println!(
            "eDRAM performance-effective region: {:.1} MB .. {:.1} MB",
            lo / MIB,
            hi / MIB
        );
    }
    let mut knl_kernel = kernel;
    knl_kernel.threads = 256;
    let mut s = Series::new(vec![
        "footprint_mb",
        "gflops_ddr",
        "gflops_flat",
        "gflops_cache",
        "gflops_hybrid",
    ]);
    let curves: Vec<_> = OpmConfig::knl_modes()
        .iter()
        .map(|&c| stepping_curve(c, knl_kernel, 8.0 * MIB, 64.0 * GIB, 96))
        .collect();
    for i in 0..curves[0].points.len() {
        s.push(vec![
            curves[0].points[i].0 / MIB,
            curves[0].points[i].1,
            curves[1].points[i].1,
            curves[2].points[i].1,
            curves[3].points[i].1,
        ]);
    }
    emit(&s, "fig29_mcdram_guideline");
}

/// Fig. 30: hardware what-if — scaling the OPM capacity moves the cache
/// peak right; scaling its bandwidth moves it up.
pub fn fig30_hw_tuning() {
    let base = [
        SchematicLevel {
            capacity: 6e6,
            bandwidth: 210.0,
            valley: 0.7,
        },
        SchematicLevel {
            capacity: 128e6,
            bandwidth: 102.0,
            valley: 0.85,
        },
        SchematicLevel {
            capacity: 16e9,
            bandwidth: 34.0,
            valley: 1.0,
        },
    ];
    let ai = 0.25;
    let n = 32;
    let baseline = schematic(&base, ai, n);
    let cap2 = schematic_hw_tuning(&base, 1, 2.0, 1.0, ai, n);
    let cap4 = schematic_hw_tuning(&base, 1, 4.0, 1.0, ai, n);
    let bw2 = schematic_hw_tuning(&base, 1, 1.0, 2.0, ai, n);
    let bw4 = schematic_hw_tuning(&base, 1, 1.0, 4.0, ai, n);
    let mut s = Series::new(vec![
        "footprint",
        "base",
        "capacity_x2",
        "capacity_x4",
        "bandwidth_x2",
        "bandwidth_x4",
    ]);
    for i in 0..baseline
        .len()
        .min(cap2.len())
        .min(bw2.len())
        .min(cap4.len())
        .min(bw4.len())
    {
        s.push(vec![
            baseline[i].0,
            baseline[i].1,
            cap2[i].1,
            cap4[i].1,
            bw2[i].1,
            bw4[i].1,
        ]);
    }
    emit(&s, "fig30_hw_tuning");
}

/// Table 4: eDRAM summary statistics for all eight kernels + Eq. 1 energy
/// break-even assessment.
pub fn table4_edram_summary() {
    let rows = summary_rows(
        OpmConfig::Broadwell(EdramMode::Off),
        &[OpmConfig::Broadwell(EdramMode::On)],
    );
    let t = render_summary(&rows[0]);
    print!("{}", t.render());
    let cross = cross_kernel(&rows[0]);
    println!(
        "across kernels: avg gap {:.2} GFlop/s, max gap {:.2}, avg speedup {:.3}x, max speedup {:.3}x",
        cross.avg_gap, cross.max_gap, cross.avg_speedup, cross.max_speedup
    );
    // Eq. 1: at ~8.6 % power overhead, does the average gain save energy?
    let w = 0.086;
    let p = cross.avg_speedup - 1.0;
    println!(
        "Eq.1 @ {:.1}% power overhead: avg gain {:.1}% -> energy {} (break-even gain {:.1}%)",
        100.0 * w,
        100.0 * p,
        if opm_saves_energy(p, w) {
            "SAVED"
        } else {
            "NOT saved"
        },
        100.0 * breakeven_gain(w)
    );
    emit_summary_csv(&rows[0], "table4_edram_summary");
    let _ = render_summary(&rows[0]).write(out_dir(), "table4_edram_summary");
}

/// Table 5: MCDRAM summary statistics (flat/cache/hybrid vs DDR).
pub fn table5_mcdram_summary() {
    let rows = summary_rows(
        OpmConfig::Knl(McdramMode::Off),
        &[
            OpmConfig::Knl(McdramMode::Flat),
            OpmConfig::Knl(McdramMode::Cache),
            OpmConfig::Knl(McdramMode::Hybrid),
        ],
    );
    for (mode, rws) in ["flat", "cache", "hybrid"].iter().zip(&rows) {
        println!("== MCDRAM {mode} mode ==");
        print!("{}", render_summary(rws).render());
        let cross = cross_kernel(rws);
        println!(
            "across kernels: avg gap {:.2}, max gap {:.2}, avg speedup {:.3}x, max speedup {:.3}x\n",
            cross.avg_gap, cross.max_gap, cross.avg_speedup, cross.max_speedup
        );
        emit_summary_csv(rws, &format!("table5_mcdram_{mode}_summary"));
        let _ = render_summary(rws).write(out_dir(), &format!("table5_mcdram_{mode}_summary"));
    }
}

fn summary_rows(base: OpmConfig, opms: &[OpmConfig]) -> Vec<Vec<SummaryRow>> {
    let mut out = vec![Vec::new(); opms.len()];
    for kernel in KernelId::ALL {
        let base_sweep = kernel_sweep_gflops(kernel, base);
        for (i, &cfg) in opms.iter().enumerate() {
            let opm_sweep = kernel_sweep_gflops(kernel, cfg);
            out[i].push(summarize_pair(kernel.name(), &base_sweep, &opm_sweep));
        }
    }
    out
}

fn render_summary(rows: &[SummaryRow]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Kernel",
        "Base best",
        "OPM best",
        "Avg gap",
        "Max gap",
        "Avg speedup",
        "Max speedup",
    ]);
    for r in rows {
        t.push(vec![
            r.kernel.clone(),
            format!("{:.1}", r.base_best),
            format!("{:.1}", r.opm_best),
            format!("{:.2}", r.avg_gap),
            format!("{:.2}", r.max_gap),
            format!("{:.3}x", r.avg_speedup),
            format!("{:.3}x", r.max_speedup),
        ]);
    }
    t
}

fn emit_summary_csv(rows: &[SummaryRow], name: &str) {
    let mut s = Series::new(vec![
        "kernel_index",
        "base_best",
        "opm_best",
        "avg_gap",
        "max_gap",
        "avg_speedup",
        "max_speedup",
    ]);
    for (i, r) in rows.iter().enumerate() {
        s.push(vec![
            i as f64,
            r.base_best,
            r.opm_best,
            r.avg_gap,
            r.max_gap,
            r.avg_speedup,
            r.max_speedup,
        ]);
    }
    emit(&s, name);
}
