//! `opm serve`: the §6 mode advisor as a long-running what-if query
//! daemon, plus the one evaluation path it shares with `opm advise`.
//!
//! The daemon speaks `opm-api/v1` (see [`opm_core::api`]): length-prefixed
//! JSON frames over TCP, one [`Request`] batch per frame, answered in
//! order. Both the daemon and the one-shot `opm advise` path funnel every
//! query through [`respond`], so the two produce *byte-identical*
//! responses for the same request by construction — there is no second
//! evaluation code path to drift.
//!
//! Profiles are memoized in the serving engine's sharded cross-request
//! cache: concurrent identical queries coalesce onto one computation
//! (the engine's pending-marker scheme), and `OPM_CACHE_CAP` bounds the
//! daemon's memory by evicting least-recently-used profiles.
//!
//! Backpressure is load-shedding, not stalling: requests beyond the
//! `--max-inflight` bound receive an immediate typed `overloaded`
//! response per query (clients retry with backoff), so a burst cannot
//! queue unboundedly behind slow evaluations.

use crate::cli::{parse_config, parse_kernel};
use opm_core::api::{
    read_frame, write_frame, Advice, ApiError, FrameError, LevelTraffic, Query, QueryResult,
    Request, Response,
};
use opm_core::guideline::{explain_mcdram, recommend_mcdram, Workload};
use opm_core::perf::PerfModel;
use opm_core::platform::{Machine, McdramMode, PlatformSpec};
use opm_core::power::PowerModel;
use opm_core::profile::{AccessProfile, ProfileKey};
use opm_core::units::MIB;
use opm_kernels::engine::Engine;
use opm_kernels::registry::KernelId;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default bound on requests evaluated concurrently before the daemon
/// load-sheds with `overloaded`.
pub const DEFAULT_MAX_INFLIGHT: usize = 64;

/// Default profile-cache bound for a serving engine. Sweep campaigns
/// run the cache unbounded (their key set is finite); a daemon fed by
/// arbitrary clients is not, so `opm serve` bounds it unless
/// `OPM_CACHE_CAP` says otherwise.
pub const DEFAULT_SERVE_CACHE_CAP: usize = 4096;

// ---------------------------------------------------------------------
// The shared evaluation path
// ---------------------------------------------------------------------

/// Query parameters resolved against the documented defaults (the same
/// defaults as `opm model`, so a bare `{kernel, config}` query answers
/// the paper's reference point).
struct Resolved {
    n: usize,
    tile: usize,
    rows: usize,
    nnz: usize,
    grid: usize,
    threads: usize,
    span: f64,
    levels: f64,
    footprint_mb: f64,
}

fn positive_usize(v: Option<u64>, default: usize, name: &str) -> Result<usize, ApiError> {
    match v {
        None => Ok(default),
        Some(0) => Err(ApiError::BadParam(format!("{name:?} must be positive"))),
        Some(v) => Ok(v as usize),
    }
}

fn positive_f64(v: Option<f64>, default: f64, name: &str) -> Result<f64, ApiError> {
    match v {
        None => Ok(default),
        Some(v) if v > 0.0 && v.is_finite() => Ok(v),
        Some(_) => Err(ApiError::BadParam(format!(
            "{name:?} must be a positive finite number"
        ))),
    }
}

impl Resolved {
    fn new(kernel: KernelId, machine: Machine, q: &Query) -> Result<Resolved, ApiError> {
        let dense_n = if matches!(kernel, KernelId::Fft) { 400 } else { 8192 };
        Ok(Resolved {
            n: positive_usize(q.n, dense_n, "n")?,
            tile: positive_usize(q.tile, 384, "tile")?,
            rows: positive_usize(q.rows, 1_000_000, "rows")?,
            nnz: positive_usize(q.nnz, 15_000_000, "nnz")?,
            grid: positive_usize(q.grid, 512, "grid")?,
            threads: positive_usize(q.threads, kernel.threads(machine), "threads")?,
            span: positive_f64(q.span, 400_000.0, "span")?,
            levels: positive_f64(q.levels, 300.0, "levels")?,
            footprint_mb: positive_f64(q.footprint_mb, 2048.0, "footprint_mb")?,
        })
    }
}

/// The memoization key of a query's profile (identical queries — after
/// default resolution — share one cache entry across requests).
fn profile_key(kernel: KernelId, p: &Resolved, cores: usize) -> ProfileKey {
    match kernel {
        KernelId::Gemm => ProfileKey::Gemm {
            n: p.n,
            tile: p.tile,
            threads: p.threads,
            cores,
        },
        KernelId::Cholesky => ProfileKey::Cholesky {
            n: p.n,
            tile: p.tile,
            threads: p.threads,
            cores,
        },
        KernelId::Spmv => ProfileKey::spmv(p.rows, p.nnz, p.span, p.threads),
        KernelId::Sptrans => ProfileKey::Sptrans {
            rows: p.rows,
            nnz: p.nnz,
            threads: p.threads,
        },
        KernelId::Sptrsv => ProfileKey::sptrsv(p.rows, p.nnz, p.span, p.levels, p.threads),
        KernelId::Fft => ProfileKey::Fft3d {
            n: p.n,
            threads: p.threads,
            cores,
        },
        KernelId::Stencil => ProfileKey::Stencil {
            grid: (p.grid, p.grid, p.grid),
            block: (64, 64, 96),
            threads: p.threads,
            cores,
        },
        KernelId::Stream => ProfileKey::Stream {
            n: ((p.footprint_mb * MIB) / 24.0) as usize,
            unroll: 4,
            threads: p.threads,
        },
    }
}

/// Construct the access profile for a resolved query (the cache-miss
/// path; must agree with [`profile_key`] on every parameter).
fn build_profile(kernel: KernelId, p: &Resolved, cores: usize) -> AccessProfile {
    match kernel {
        KernelId::Gemm => opm_dense::gemm_profile(p.n, p.tile, p.threads, cores),
        KernelId::Cholesky => opm_dense::cholesky_profile(p.n, p.tile, p.threads, cores),
        KernelId::Spmv => opm_sparse::spmv_profile(p.rows, p.nnz, p.span, p.threads),
        KernelId::Sptrans => opm_sparse::sptrans_profile(p.rows, p.nnz, p.threads),
        KernelId::Sptrsv => {
            opm_sparse::sptrsv_profile(p.rows, p.nnz, p.span, p.levels, p.threads)
        }
        KernelId::Fft => opm_fft::fft3d_profile(p.n, p.threads, cores),
        KernelId::Stencil => {
            opm_stencil::stencil_profile(p.grid, p.grid, p.grid, (64, 64, 96), p.threads, cores)
        }
        KernelId::Stream => {
            opm_stencil::stream_profile(((p.footprint_mb * MIB) / 24.0) as usize, 4, p.threads)
        }
    }
}

/// Answer one query: resolve, profile (through the engine's coalescing
/// cache), evaluate, price, and recommend. Every failure is a typed
/// [`ApiError`].
pub fn answer_query(engine: &Engine, q: &Query) -> Result<Advice, ApiError> {
    let kernel =
        parse_kernel(&q.kernel).ok_or_else(|| ApiError::UnknownKernel(q.kernel.clone()))?;
    let config =
        parse_config(&q.config).ok_or_else(|| ApiError::UnknownConfig(q.config.clone()))?;
    let machine = config.machine();
    let cores = PlatformSpec::for_machine(machine).cores;
    let p = Resolved::new(kernel, machine, q)?;
    if let Some(hot) = q.hot_mb {
        if !(hot > 0.0 && hot.is_finite()) {
            return Err(ApiError::BadParam(
                "\"hot_mb\" must be a positive finite number".to_string(),
            ));
        }
    }

    let planned = engine.profile(profile_key(kernel, &p, cores), || {
        build_profile(kernel, &p, cores)
    });
    let model = PerfModel::for_config(config);
    let est = model.plan().evaluate_planned(planned.plan());
    let power_model = PowerModel::for_machine(machine);
    let flops = planned.profile().total_flops();
    let bytes = planned.profile().total_bytes();
    let power = power_model.sample(&est, config, flops, bytes);
    let energy_j = power_model.energy_j(&est, config, flops, bytes);

    let footprint = planned.profile().footprint;
    let workload = Workload {
        footprint,
        hot_set: q.hot_mb.map(|mb| mb * MIB).unwrap_or(footprint),
        latency_bound: q
            .latency_bound
            .unwrap_or(matches!(kernel, KernelId::Sptrsv)),
    };
    let (recommended_mode, guideline, explanation) = recommend(machine, &workload);

    Ok(Advice {
        kernel: kernel.name().to_string(),
        config: config.label().to_string(),
        footprint_mb: footprint / MIB,
        time_ms: est.time_ns / 1e6,
        gflops: est.gflops,
        bandwidth_gbs: est.bandwidth_gbs,
        dram_mb: est.dram_bytes / MIB,
        opm_mb: est.opm_bytes / MIB,
        level_traffic: est
            .level_traffic()
            .into_iter()
            .map(|(level, bytes, time_ns)| LevelTraffic {
                level: level.to_string(),
                bytes,
                time_ns,
            })
            .collect(),
        package_w: power.package_w,
        dram_w: power.dram_w,
        energy_j,
        recommended_mode,
        guideline,
        explanation,
    })
}

/// The §6 recommendation with its citation, per machine.
fn recommend(machine: Machine, w: &Workload) -> (String, String, String) {
    match machine {
        Machine::Knl => {
            let mode = recommend_mcdram(w);
            let (mode_str, citation) = match mode {
                McdramMode::Off => ("ddr", "paper §4.2.2 (latency-bound: prefer DDR)"),
                McdramMode::Flat => ("flat", "paper §6 guideline II"),
                McdramMode::Hybrid => ("hybrid", "paper §6 guideline III"),
                McdramMode::Cache => ("cache", "paper §6 guideline IV"),
            };
            (
                mode_str.to_string(),
                citation.to_string(),
                explain_mcdram(w),
            )
        }
        Machine::Broadwell => (
            "edram-on".to_string(),
            "paper §5.1 (eDRAM never observed to hurt performance)".to_string(),
            "keep eDRAM enabled: across every Broadwell experiment the paper never \
             observed the 128 MiB eDRAM victim cache hurting performance; disable it \
             only when the Eq. 1 energy break-even says the static power is not \
             repaid (paper §5.2)"
                .to_string(),
        ),
    }
}

/// Answer one request batch. This is the *whole* evaluation surface:
/// `opm advise`, the daemon, and the tests all call it, which is what
/// makes served and one-shot responses byte-identical.
///
/// A panic while answering one query (a modeling bug) is caught and
/// reported as a typed `internal` error for that query — it never takes
/// the daemon down or poisons the rest of the batch.
pub fn respond(engine: &Engine, req: &Request) -> Response {
    let results = req
        .queries
        .iter()
        .map(|q| {
            let answer = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                answer_query(engine, q)
            }));
            match answer {
                Ok(Ok(a)) => QueryResult::Ok(Box::new(a)),
                Ok(Err(e)) => QueryResult::Err(e),
                Err(panic) => QueryResult::Err(ApiError::Internal(panic_message(&panic))),
            }
        })
        .collect();
    Response {
        id: req.id,
        results,
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

/// Shed an entire request: one typed `overloaded` result per query (and
/// at least one for a query-less request, so the client always sees the
/// condition).
fn shed(req: &Request) -> Response {
    let n = req.queries.len().max(1);
    Response {
        id: req.id,
        results: (0..n).map(|_| QueryResult::Err(ApiError::Overloaded)).collect(),
    }
}

// ---------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------

/// Counters a finished daemon reports (also exported as telemetry
/// counters `serve_*` while running).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered (including shed ones).
    pub requests: u64,
    /// Queries answered.
    pub queries: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Frames that failed to decode (framing or document errors).
    pub malformed: u64,
    /// Connections served.
    pub connections: u64,
}

struct ServerShared {
    engine: Arc<Engine>,
    inflight: AtomicUsize,
    max_inflight: usize,
    shutdown: AtomicBool,
    requests: AtomicU64,
    queries: AtomicU64,
    shed: AtomicU64,
    malformed: AtomicU64,
    connections: AtomicU64,
}

/// A bound `opm serve` daemon. [`run`](Server::run) blocks until a
/// request with `"shutdown": true` drains.
pub struct Server {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral test port). The
    /// engine is shared — its profile cache is the daemon's
    /// cross-request cache.
    pub fn bind(addr: &str, engine: Arc<Engine>, max_inflight: usize) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(ServerShared {
                engine,
                inflight: AtomicUsize::new(0),
                max_inflight,
                shutdown: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                queries: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                malformed: AtomicU64::new(0),
                connections: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (reports the kernel-chosen port after binding
    /// port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept-and-serve until shutdown. Thread-per-connection: the
    /// global in-flight bound (not the connection count) is what limits
    /// concurrent evaluation work.
    pub fn run(&self) -> io::Result<ServeStats> {
        let addr = self.local_addr()?;
        let mut workers = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = self.listener.accept()?;
            if self.shared.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection itself.
                break;
            }
            let shared = Arc::clone(&self.shared);
            workers.push(std::thread::spawn(move || {
                serve_connection(stream, &shared, addr);
            }));
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(ServeStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            queries: self.shared.queries.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            malformed: self.shared.malformed.load(Ordering::Relaxed),
            connections: self.shared.connections.load(Ordering::Relaxed),
        })
    }
}

/// Serve one connection: a sequence of request frames, each answered
/// with exactly one response frame. Framing errors answer with a typed
/// `malformed` response and close (the stream offset can no longer be
/// trusted); document errors answer and keep the connection.
fn serve_connection(mut stream: TcpStream, shared: &ServerShared, addr: SocketAddr) {
    let _ = stream.set_nodelay(true);
    shared.connections.fetch_add(1, Ordering::Relaxed);
    let tele = Arc::clone(shared.engine.telemetry());
    loop {
        let text = match read_frame(&mut stream) {
            Ok(Some(text)) => text,
            Ok(None) => return,
            Err(e) => {
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                tele.counter("serve_malformed_total").inc();
                if !matches!(e, FrameError::Io(_)) {
                    let resp = Response {
                        id: 0,
                        results: vec![QueryResult::Err(ApiError::Malformed(e.to_string()))],
                    };
                    let _ = write_frame(&mut stream, &resp.render());
                }
                return;
            }
        };
        let span = tele.span("serve", "request");
        let (resp, stop) = match Request::parse(&text) {
            Err(e) => {
                shared.malformed.fetch_add(1, Ordering::Relaxed);
                tele.counter("serve_malformed_total").inc();
                (
                    Response {
                        id: 0,
                        results: vec![QueryResult::Err(ApiError::Malformed(e))],
                    },
                    false,
                )
            }
            Ok(req) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.queries.fetch_add(req.queries.len() as u64, Ordering::Relaxed);
                tele.counter("serve_requests_total").inc();
                tele.counter("serve_queries_total")
                    .add(req.queries.len() as u64);
                let resp = match admit(shared) {
                    Some(_permit) => respond(&shared.engine, &req),
                    None => {
                        shared.shed.fetch_add(1, Ordering::Relaxed);
                        tele.counter("serve_overloaded_total").inc();
                        shed(&req)
                    }
                };
                (resp, req.shutdown)
            }
        };
        let ok = write_frame(&mut stream, &resp.render()).is_ok();
        drop(span);
        if stop {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the acceptor with a throwaway connection.
            let _ = TcpStream::connect(addr);
            return;
        }
        if !ok {
            return;
        }
    }
}

/// RAII in-flight permit; admission fails (→ load-shed) once
/// `max_inflight` requests are being evaluated.
struct Permit<'a>(&'a AtomicUsize);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn admit(shared: &ServerShared) -> Option<Permit<'_>> {
    let mut cur = shared.inflight.load(Ordering::SeqCst);
    loop {
        if cur >= shared.max_inflight {
            return None;
        }
        match shared.inflight.compare_exchange(
            cur,
            cur + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return Some(Permit(&shared.inflight)),
            Err(now) => cur = now,
        }
    }
}

// ---------------------------------------------------------------------
// The client
// ---------------------------------------------------------------------

/// A blocking `opm-api/v1` client over one TCP connection (used by
/// `opm loadgen`, the `mode_advisor` example, and the integration
/// tests).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Frames are small request/response pairs: Nagle only adds
        // delayed-ACK latency here.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one request frame and read the matching response frame.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, String> {
        self.roundtrip_text(&req.render())
    }

    /// Send pre-rendered request bytes (the byte-identity tests use this
    /// to control the exact frame on the wire).
    pub fn roundtrip_text(&mut self, request_text: &str) -> Result<Response, String> {
        let text = self.roundtrip_raw(request_text)?;
        Response::parse(&text)
    }

    /// As [`roundtrip_text`](Self::roundtrip_text) but returns the raw
    /// response payload without decoding it.
    pub fn roundtrip_raw(&mut self, request_text: &str) -> Result<String, String> {
        write_frame(&mut self.stream, request_text).map_err(|e| format!("send: {e}"))?;
        read_frame(&mut self.stream)
            .map_err(|e| format!("receive: {e}"))?
            .ok_or_else(|| "server closed the connection".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_kernels::engine::EngineConfig;

    fn test_engine() -> Arc<Engine> {
        Arc::new(Engine::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        }))
    }

    fn gemm_query() -> Query {
        Query {
            kernel: "gemm".into(),
            config: "knl-flat".into(),
            n: Some(2048),
            tile: Some(256),
            ..Query::default()
        }
    }

    #[test]
    fn answer_matches_direct_model_evaluation() {
        let engine = test_engine();
        let a = answer_query(&engine, &gemm_query()).unwrap();
        assert_eq!(a.kernel, "GEMM");
        assert_eq!(a.config, "knl-flat");
        assert!(a.gflops > 0.0);
        assert!(a.time_ms > 0.0);
        assert!(a.energy_j > 0.0);
        assert!(!a.level_traffic.is_empty());
        // Fits the 16 GiB MCDRAM → flat, guideline II.
        assert_eq!(a.recommended_mode, "flat");
        assert!(a.guideline.contains("guideline II"), "{}", a.guideline);
    }

    #[test]
    fn typed_errors_for_unknowns_and_bad_params() {
        let engine = test_engine();
        let mut q = gemm_query();
        q.kernel = "dgemv".into();
        assert!(matches!(
            answer_query(&engine, &q),
            Err(ApiError::UnknownKernel(_))
        ));
        let mut q = gemm_query();
        q.config = "knl-warp".into();
        assert!(matches!(
            answer_query(&engine, &q),
            Err(ApiError::UnknownConfig(_))
        ));
        let mut q = gemm_query();
        q.n = Some(0);
        assert!(matches!(answer_query(&engine, &q), Err(ApiError::BadParam(_))));
        let mut q = gemm_query();
        q.hot_mb = Some(-3.0);
        assert!(matches!(answer_query(&engine, &q), Err(ApiError::BadParam(_))));
    }

    #[test]
    fn latency_bound_defaults_follow_the_kernel() {
        let engine = test_engine();
        let q = Query {
            kernel: "sptrsv".into(),
            config: "knl-flat".into(),
            ..Query::default()
        };
        let a = answer_query(&engine, &q).unwrap();
        // SpTRSV is latency bound by default → DDR preferred (§4.2.2).
        assert_eq!(a.recommended_mode, "ddr");
        // An explicit override flips it back to the capacity rules.
        let q = Query {
            latency_bound: Some(false),
            ..q
        };
        let a = answer_query(&engine, &q).unwrap();
        assert_ne!(a.recommended_mode, "ddr");
    }

    #[test]
    fn broadwell_recommends_edram_on() {
        let engine = test_engine();
        let q = Query {
            kernel: "stream".into(),
            config: "brd-edram".into(),
            footprint_mb: Some(64.0),
            ..Query::default()
        };
        let a = answer_query(&engine, &q).unwrap();
        assert_eq!(a.recommended_mode, "edram-on");
        assert!(a.guideline.contains("§5.1"));
    }

    #[test]
    fn identical_queries_share_one_profile_computation() {
        let engine = test_engine();
        let req = Request {
            id: 1,
            queries: vec![gemm_query(), gemm_query(), gemm_query()],
            shutdown: false,
        };
        let resp = respond(&engine, &req);
        assert_eq!(resp.results.len(), 3);
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 2);
    }

    #[test]
    fn responses_echo_id_and_preserve_order() {
        let engine = test_engine();
        let req = Request {
            id: 99,
            queries: vec![
                gemm_query(),
                Query {
                    kernel: "nope".into(),
                    config: "knl-flat".into(),
                    ..Query::default()
                },
            ],
            shutdown: false,
        };
        let resp = respond(&engine, &req);
        assert_eq!(resp.id, 99);
        assert!(matches!(resp.results[0], QueryResult::Ok(_)));
        assert!(matches!(
            resp.results[1],
            QueryResult::Err(ApiError::UnknownKernel(_))
        ));
    }

    #[test]
    fn shed_covers_every_query() {
        let req = Request {
            id: 5,
            queries: vec![gemm_query(), gemm_query()],
            shutdown: false,
        };
        let resp = shed(&req);
        assert_eq!(resp.results.len(), 2);
        assert!(resp
            .results
            .iter()
            .all(|r| matches!(r, QueryResult::Err(ApiError::Overloaded))));
        // A query-less request still reports the condition once.
        let resp = shed(&Request::default());
        assert_eq!(resp.results.len(), 1);
    }
}
