//! Quarantining loader for on-disk MatrixMarket corpora.
//!
//! The paper's sparse sweeps run over 968 UF collection matrices; one
//! corrupt download must not abort a multi-hour campaign. This loader
//! walks a directory of `.mtx` files and returns every matrix that
//! parses; files that fail land in a quarantine list with the typed
//! parse reason ([`opm_sparse::MtxError`]) and are written to
//! `results/quarantine_manifest.csv` — the sweep continues over the
//! survivors.
//!
//! I/O-classified failures (unreadable file, injected `io@matrix:NAME`
//! faults from the engine's fault plan) are treated as transient and
//! retried up to the engine's retry budget with the same deterministic
//! backoff as sweep points; parse errors are permanent and quarantine
//! immediately — a corrupt file does not fix itself on retry.

use crate::out_dir;
use opm_core::report::RecordTable;
use opm_kernels::engine::Engine;
use opm_kernels::faultinject::FaultKind;
use opm_sparse::{load_matrix_market, CsrMatrix, MtxError};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One quarantined corpus file.
#[derive(Debug, Clone)]
pub struct QuarantinedMatrix {
    /// Path of the file that failed.
    pub path: PathBuf,
    /// The typed load error, rendered.
    pub reason: String,
    /// Load attempts made (>1 only for transient/injected failures).
    pub attempts: usize,
}

/// Result of a quarantining corpus load.
#[derive(Debug, Default)]
pub struct CorpusLoad {
    /// Successfully parsed matrices, as (file stem, matrix), in sorted
    /// path order.
    pub loaded: Vec<(String, CsrMatrix)>,
    /// Files that failed to load, in sorted path order.
    pub quarantined: Vec<QuarantinedMatrix>,
}

impl CorpusLoad {
    /// Write `quarantine_manifest.csv` under the results dir (header-only
    /// when nothing was quarantined, so its presence is deterministic).
    pub fn write_manifest(&self) -> std::io::Result<PathBuf> {
        let mut t = RecordTable::new(vec!["path", "reason", "attempts"]);
        for q in &self.quarantined {
            t.push(vec![
                q.path.display().to_string(),
                q.reason.clone(),
                q.attempts.to_string(),
            ]);
        }
        t.write_csv(out_dir(), "quarantine_manifest")
    }
}

/// Load one `.mtx` file with transient-failure retry, consulting the
/// engine's fault plan under the file stem (so
/// `OPM_FAULT_SPEC=io@matrix:simple3` injects an I/O failure into
/// `simple3.mtx` at any thread count).
fn load_one(engine: &Engine, path: &Path) -> Result<CsrMatrix, QuarantinedMatrix> {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let config = engine.config();
    let plan = config.fault_plan.as_deref();
    let mut attempt = 0usize;
    loop {
        let injected = plan.and_then(|p| p.matrix_fault(&stem, attempt));
        let outcome: Result<CsrMatrix, (String, bool)> = match injected {
            Some(kind) => Err((
                format!("injected {} fault loading {stem}", kind.label()),
                // Injected faults follow the same transience rule as
                // sweep points: io is retryable, panic-class is not.
                kind == FaultKind::Io,
            )),
            None => load_matrix_market(path).map_err(|e| {
                let transient = matches!(e, MtxError::Io { .. });
                (e.to_string(), transient)
            }),
        };
        match outcome {
            Ok(m) => return Ok(m),
            Err((reason, transient)) => {
                if transient && attempt < config.max_retries {
                    let us = config
                        .backoff_base_us
                        .checked_shl(attempt.min(16) as u32)
                        .unwrap_or(u64::MAX)
                        .min(10_000);
                    if us > 0 {
                        std::thread::sleep(Duration::from_micros(us));
                    }
                    attempt += 1;
                    continue;
                }
                return Err(QuarantinedMatrix {
                    path: path.to_path_buf(),
                    reason,
                    attempts: attempt + 1,
                });
            }
        }
    }
}

/// Load every `*.mtx` under `dir` (sorted by path for determinism),
/// quarantining failures instead of aborting. Only the directory read
/// itself is a hard error.
pub fn load_corpus_dir(engine: &Engine, dir: &Path) -> std::io::Result<CorpusLoad> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "mtx"))
        .collect();
    paths.sort();
    let mut load = CorpusLoad::default();
    for path in paths {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        match load_one(engine, &path) {
            Ok(m) => load.loaded.push((stem, m)),
            Err(q) => load.quarantined.push(q),
        }
    }
    Ok(load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_kernels::faultinject::FaultPlan;
    use opm_kernels::EngineConfig;
    use std::fs;

    fn corpus_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("opm_corpus_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    const GOOD: &str = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n";
    const BAD: &str = "%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1.0\n";

    #[test]
    fn bad_files_are_quarantined_and_good_ones_survive() {
        let dir = corpus_dir("mixed");
        fs::write(dir.join("a_good.mtx"), GOOD).unwrap();
        fs::write(dir.join("b_bad.mtx"), BAD).unwrap();
        fs::write(dir.join("c_good.mtx"), GOOD).unwrap();
        fs::write(dir.join("ignored.txt"), "not a matrix").unwrap();
        let engine = Engine::new(EngineConfig::serial());
        let load = load_corpus_dir(&engine, &dir).unwrap();
        assert_eq!(load.loaded.len(), 2);
        assert_eq!(load.loaded[0].0, "a_good");
        assert_eq!(load.loaded[1].0, "c_good");
        assert_eq!(load.quarantined.len(), 1);
        let q = &load.quarantined[0];
        assert!(q.path.ends_with("b_bad.mtx"));
        assert!(q.reason.contains("out of bounds"), "{}", q.reason);
        assert_eq!(q.attempts, 1, "parse errors are permanent, no retry");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_fault_recovers_on_retry() {
        let dir = corpus_dir("inject");
        fs::write(dir.join("victim.mtx"), GOOD).unwrap();
        // io@matrix fires only on attempt 0 (non-persistent), so the
        // first retry reads the perfectly good file.
        let plan = FaultPlan::parse("io@matrix:victim").unwrap();
        let engine = Engine::new(EngineConfig::serial().with_fault_plan(plan));
        let load = load_corpus_dir(&engine, &dir).unwrap();
        assert_eq!(load.loaded.len(), 1);
        assert!(load.quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_injected_fault_exhausts_retries_into_quarantine() {
        let dir = corpus_dir("persist");
        fs::write(dir.join("victim.mtx"), GOOD).unwrap();
        fs::write(dir.join("other.mtx"), GOOD).unwrap();
        let plan = FaultPlan::parse("io@matrix:victim:persist").unwrap();
        let mut config = EngineConfig::serial().with_fault_plan(plan);
        config.max_retries = 2;
        config.backoff_base_us = 0;
        let engine = Engine::new(config);
        let load = load_corpus_dir(&engine, &dir).unwrap();
        assert_eq!(load.loaded.len(), 1);
        assert_eq!(load.loaded[0].0, "other");
        assert_eq!(load.quarantined.len(), 1);
        assert_eq!(load.quarantined[0].attempts, 3, "1 try + 2 retries");
        assert!(load.quarantined[0].reason.contains("injected io fault"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_has_one_row_per_quarantined_file() {
        let dir = corpus_dir("manifest");
        fs::write(dir.join("bad.mtx"), BAD).unwrap();
        let results = corpus_dir("manifest_results");
        let _lock = crate::TEST_ENV_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        std::env::set_var("OPM_RESULTS", &results);
        let engine = Engine::new(EngineConfig::serial());
        let load = load_corpus_dir(&engine, &dir).unwrap();
        let path = load.write_manifest().unwrap();
        std::env::remove_var("OPM_RESULTS");
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "path,reason,attempts");
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("bad.mtx"));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&results);
    }
}
