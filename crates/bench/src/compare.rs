//! `opm bench --compare`: per-metric deltas of a fresh [`BenchReport`]
//! against a committed `BENCH_engine.json` baseline, so perf changes are
//! self-reporting. Comparison is informational by default; the CLI's
//! opt-in `--fail-on-regression` turns any >20% regression into a
//! nonzero exit.
//!
//! The baseline reader is a minimal extractor for the harness's own
//! stable schema (`opm-bench-engine/v1`, fixed key order, hand-rolled
//! writer in [`crate::bench_engine`]) — not a general JSON parser; the
//! build is offline, so no serde.

use crate::bench_engine::BenchReport;
use std::fmt::Write as _;

/// Regression threshold: a metric that moves more than this fraction in
/// the bad direction fails an opt-in gated comparison.
pub const REGRESSION_THRESHOLD: f64 = 0.20;

/// The headline metrics extracted from a committed `BENCH_engine.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineMetrics {
    /// Hierarchy-simulation line touches per second.
    pub simulated_accesses_per_sec: f64,
    /// Reuse-histogram lines per second.
    pub reuse_lines_per_sec: f64,
    /// Engine sweep points per second.
    pub sweep_points_per_sec: f64,
    /// Reduced-campaign wall seconds (lower is better).
    pub campaign_wall_secs: f64,
    /// Reduced-campaign items per second (0 when the baseline was
    /// written with `--no-campaign`).
    pub campaign_items_per_sec: f64,
}

/// Find the number following `"key":` at or after byte offset `from`.
fn number_after(text: &str, from: usize, key: &str) -> Option<(f64, usize)> {
    let anchor = format!("\"{key}\":");
    let at = text.get(from..)?.find(&anchor)? + from + anchor.len();
    let rest = text.get(at..)?;
    let start = rest.find(|c: char| !c.is_whitespace())?;
    let tail = &rest[start..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(tail.len());
    tail[..end].parse().ok().map(|v| (v, at + start + end))
}

/// Extract the baseline metrics from a `BENCH_engine.json` document.
pub fn parse_baseline(text: &str) -> Result<BaselineMetrics, String> {
    if !text.contains("\"schema\": \"opm-bench-engine/v1\"") {
        return Err("baseline is not an opm-bench-engine/v1 report".to_string());
    }
    let top = |key: &str| {
        number_after(text, 0, key)
            .map(|(v, _)| v)
            .ok_or_else(|| format!("baseline is missing \"{key}\""))
    };
    // The campaign *section* rate lives after the `"campaign": {` group
    // header (`campaign_wall_secs` is a distinct top-level key).
    let campaign_items_per_sec = match text.find("\"campaign\": {") {
        Some(at) => number_after(text, at, "items_per_sec")
            .map(|(v, _)| v)
            .ok_or("baseline campaign group is missing \"items_per_sec\"")?,
        None => 0.0,
    };
    Ok(BaselineMetrics {
        simulated_accesses_per_sec: top("simulated_accesses_per_sec")?,
        reuse_lines_per_sec: top("reuse_lines_per_sec")?,
        sweep_points_per_sec: top("sweep_points_per_sec")?,
        campaign_wall_secs: top("campaign_wall_secs")?,
        campaign_items_per_sec,
    })
}

/// One metric's delta against the baseline.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name as in the JSON schema.
    pub name: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// `true` when larger values are better (throughputs); `false` for
    /// wall time.
    pub higher_is_better: bool,
}

impl MetricDelta {
    /// Signed change in the *good* direction: +0.10 = 10% better,
    /// -0.25 = 25% regression. 0 when the baseline is zero/absent (a
    /// missing campaign section must not fail the gate).
    pub fn gain(&self) -> f64 {
        if self.baseline <= 0.0 {
            return 0.0;
        }
        let ratio = self.current / self.baseline - 1.0;
        if self.higher_is_better {
            ratio
        } else {
            -ratio
        }
    }

    /// Whether this metric regressed beyond `threshold`.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.gain() < -threshold
    }
}

/// Deltas of every headline metric vs the baseline.
pub fn compare(report: &BenchReport, baseline: &BaselineMetrics) -> Vec<MetricDelta> {
    let campaign_rate = {
        let t = report
            .campaign
            .iter()
            .fold((0u64, 0.0), |(i, w), m| (i + m.items, w + m.wall_secs));
        if t.1 <= 0.0 {
            0.0
        } else {
            t.0 as f64 / t.1
        }
    };
    vec![
        MetricDelta {
            name: "simulated_accesses_per_sec",
            baseline: baseline.simulated_accesses_per_sec,
            current: report.simulated_accesses_per_sec(),
            higher_is_better: true,
        },
        MetricDelta {
            name: "reuse_lines_per_sec",
            baseline: baseline.reuse_lines_per_sec,
            current: report.reuse_lines_per_sec(),
            higher_is_better: true,
        },
        MetricDelta {
            name: "sweep_points_per_sec",
            baseline: baseline.sweep_points_per_sec,
            current: report.sweep_points_per_sec(),
            higher_is_better: true,
        },
        MetricDelta {
            name: "campaign_wall_secs",
            baseline: baseline.campaign_wall_secs,
            current: report.campaign_wall_secs(),
            higher_is_better: false,
        },
        MetricDelta {
            name: "campaign.items_per_sec",
            baseline: baseline.campaign_items_per_sec,
            current: campaign_rate,
            higher_is_better: true,
        },
    ]
}

/// Render the delta table. Returns the text and the list of metrics that
/// regressed beyond [`REGRESSION_THRESHOLD`].
pub fn render(deltas: &[MetricDelta]) -> (String, Vec<&'static str>) {
    let mut out =
        String::from("metric                          baseline       current     change\n");
    let mut regressions = Vec::new();
    for d in deltas {
        let marker = if d.regressed(REGRESSION_THRESHOLD) {
            regressions.push(d.name);
            "  REGRESSION"
        } else {
            ""
        };
        let change = if d.baseline <= 0.0 {
            "   n/a".to_string()
        } else {
            format!("{:+6.1}%", 100.0 * (d.current / d.baseline - 1.0))
        };
        let _ = writeln!(
            out,
            "{:<28} {:>13.1} {:>13.1}    {change}{marker}",
            d.name, d.baseline, d.current,
        );
    }
    (out, regressions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_engine::Measurement;

    fn report(rate_scale: f64) -> BenchReport {
        let m = |name: &str, items: u64, wall: f64| Measurement {
            name: name.to_string(),
            items,
            wall_secs: wall,
        };
        BenchReport {
            mode: "smoke",
            threads: 2,
            hierarchy: vec![m("h", (1000.0 * rate_scale) as u64, 1.0)],
            reuse: vec![m("r", (2000.0 * rate_scale) as u64, 1.0)],
            stages: vec![m("s", (3000.0 * rate_scale) as u64, 1.0)],
            campaign: vec![m("c", (400.0 * rate_scale) as u64, 1.0)],
        }
    }

    #[test]
    fn roundtrip_through_the_writer_has_zero_deltas() {
        let r = report(1.0);
        let base = parse_baseline(&r.to_json()).unwrap();
        let deltas = compare(&r, &base);
        assert_eq!(deltas.len(), 5);
        for d in &deltas {
            assert!(d.gain().abs() < 1e-9, "{d:?}");
            assert!(!d.regressed(REGRESSION_THRESHOLD), "{d:?}");
        }
        let (text, regressions) = render(&deltas);
        assert!(regressions.is_empty(), "{text}");
        assert!(text.contains("sweep_points_per_sec"), "{text}");
    }

    #[test]
    fn throughput_drop_beyond_threshold_is_a_regression() {
        let base = parse_baseline(&report(1.0).to_json()).unwrap();
        // 50% slower everywhere: all four throughputs regress; the wall
        // metric *improves* (same wall, fewer items is invisible to it).
        let deltas = compare(&report(0.5), &base);
        let (text, regressions) = render(&deltas);
        assert!(regressions.contains(&"sweep_points_per_sec"), "{text}");
        assert!(regressions.contains(&"campaign.items_per_sec"), "{text}");
        assert!(!regressions.contains(&"campaign_wall_secs"), "{text}");
        assert!(text.contains("REGRESSION"), "{text}");
        // 10% slower stays inside the 20% gate.
        let (_, ok) = render(&compare(&report(0.9), &base));
        assert!(ok.is_empty());
    }

    #[test]
    fn wall_time_increase_is_a_regression() {
        let mut slow = report(1.0);
        let base = parse_baseline(&slow.to_json()).unwrap();
        for m in &mut slow.campaign {
            m.wall_secs *= 2.0;
        }
        let deltas = compare(&slow, &base);
        let wall = deltas
            .iter()
            .find(|d| d.name == "campaign_wall_secs")
            .unwrap();
        assert!(wall.regressed(REGRESSION_THRESHOLD));
    }

    #[test]
    fn missing_campaign_baseline_is_not_a_regression() {
        let mut no_campaign = report(1.0);
        no_campaign.campaign.clear();
        let base = parse_baseline(&no_campaign.to_json()).unwrap();
        assert_eq!(base.campaign_items_per_sec, 0.0);
        let deltas = compare(&report(1.0), &base);
        let (_, regressions) = render(&deltas);
        assert!(regressions.is_empty());
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("not json").is_err());
        let truncated = "{\n  \"schema\": \"opm-bench-engine/v1\"\n}";
        assert!(parse_baseline(truncated).is_err());
    }

    #[test]
    fn parse_reads_the_committed_baseline_shape() {
        let doc = r#"{
  "schema": "opm-bench-engine/v1",
  "mode": "full",
  "threads": 2,
  "simulated_accesses_per_sec": 27820912.5,
  "reuse_lines_per_sec": 6070284.1,
  "sweep_points_per_sec": 1833907.9,
  "campaign_wall_secs": 12.5,
  "hierarchy_sim": {
    "unit": "accesses_per_sec",
    "total_items": 100,
    "total_wall_secs": 1,
    "items_per_sec": 100,
    "cases": []
  },
  "campaign": {
    "unit": "points_per_sec",
    "total_items": 2161188,
    "total_wall_secs": 12.5,
    "items_per_sec": 172895,
    "cases": []
  }
}"#;
        let b = parse_baseline(doc).unwrap();
        assert!((b.sweep_points_per_sec - 1833907.9).abs() < 1e-6);
        assert!((b.campaign_items_per_sec - 172895.0).abs() < 1e-6);
        assert!((b.campaign_wall_secs - 12.5).abs() < 1e-6);
    }
}
