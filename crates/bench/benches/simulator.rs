//! Criterion microbenchmarks of the modeling substrate itself: the analytic
//! performance model (used tens of thousands of times per figure sweep),
//! the exact cache simulator, and the reuse-distance analyzer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opm_core::perf::PerfModel;
use opm_core::platform::{EdramMode, McdramMode, OpmConfig};
use opm_core::profile::{AccessProfile, Phase, Tier};
use opm_memsim::{reuse_histogram, HierarchySim, Trace};
use std::hint::black_box;

fn model_profile() -> AccessProfile {
    let fp = 64.0 * 1024.0 * 1024.0;
    let mut ph = Phase::new("p", fp, fp * 4.0);
    ph.tiers = vec![
        Tier::new(96.0 * 1024.0, 0.5),
        Tier::new(8.0 * 1024.0 * 1024.0, 0.2),
        Tier::new(fp, 0.25),
    ];
    ph.threads = 8;
    AccessProfile::single("p", ph, fp)
}

fn bench_perf_model(c: &mut Criterion) {
    let prof = model_profile();
    let mut g = c.benchmark_group("perf_model");
    for config in [
        OpmConfig::Broadwell(EdramMode::On),
        OpmConfig::Knl(McdramMode::Hybrid),
    ] {
        let model = PerfModel::for_config(config);
        g.bench_function(BenchmarkId::new("evaluate", config.label()), |b| {
            b.iter(|| model.evaluate(black_box(&prof)))
        });
    }
    g.finish();
}

fn bench_cache_sim(c: &mut Criterion) {
    let trace = Trace::random(0, 4 * 1024 * 1024, 200_000, 11);
    let mut g = c.benchmark_group("memsim");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for config in [
        OpmConfig::Broadwell(EdramMode::On),
        OpmConfig::Knl(McdramMode::Cache),
    ] {
        g.bench_function(BenchmarkId::new("hierarchy", config.label()), |b| {
            b.iter(|| {
                let mut sim = HierarchySim::for_config(config, 1024);
                sim.run(black_box(&trace));
                sim.result().dram
            })
        });
    }
    g.finish();
}

fn bench_reuse_distance(c: &mut Criterion) {
    let trace = Trace::random(0, 1024 * 1024, 50_000, 5);
    let mut g = c.benchmark_group("reuse_distance");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("histogram", |b| {
        b.iter(|| reuse_histogram(black_box(&trace)))
    });
    g.finish();
}

fn bench_corpus_sweep(c: &mut Criterion) {
    // One whole figure-sweep unit: 100 corpus matrices through the model.
    let specs = opm_sparse::corpus(100);
    let mut g = c.benchmark_group("figure_sweep");
    g.bench_function("spmv_corpus_100", |b| {
        b.iter(|| {
            opm_kernels::sweeps::sparse_sweep(
                OpmConfig::Broadwell(EdramMode::On),
                opm_kernels::SparseKernelId::Spmv,
                black_box(&specs),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_perf_model,
    bench_cache_sim,
    bench_reuse_distance,
    bench_corpus_sweep
);
criterion_main!(benches);
