//! The STREAM synthetic bandwidth benchmark (McCalpin; paper §3.1.3 uses
//! the TRIAD kernel `a = b + α·c`). Serial and Rayon-parallel versions of
//! all four kernels, plus the TRIAD access profile.

use opm_core::profile::{AccessProfile, Phase, Tier};
use rayon::prelude::*;

/// `a[i] = b[i]` — COPY.
pub fn copy(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    a.par_iter_mut()
        .zip(b.par_iter())
        .for_each(|(x, &y)| *x = y);
}

/// `a[i] = α·b[i]` — SCALE.
pub fn scale(a: &mut [f64], b: &[f64], alpha: f64) {
    assert_eq!(a.len(), b.len());
    a.par_iter_mut()
        .zip(b.par_iter())
        .for_each(|(x, &y)| *x = alpha * y);
}

/// `a[i] = b[i] + c[i]` — ADD.
pub fn add(a: &mut [f64], b: &[f64], c: &[f64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    a.par_iter_mut()
        .zip(b.par_iter().zip(c.par_iter()))
        .for_each(|(x, (&y, &z))| *x = y + z);
}

/// `a[i] = b[i] + α·c[i]` — TRIAD (the paper's measured kernel).
pub fn triad(a: &mut [f64], b: &[f64], c: &[f64], alpha: f64) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    a.par_iter_mut()
        .zip(b.par_iter().zip(c.par_iter()))
        .for_each(|(x, (&y, &z))| *x = y + alpha * z);
}

/// Serial TRIAD reference.
pub fn triad_serial(a: &mut [f64], b: &[f64], c: &[f64], alpha: f64) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    for i in 0..a.len() {
        a[i] = b[i] + alpha * c[i];
    }
}

/// TRIAD flop count per sweep (Table 2: `2n`).
pub fn triad_flops(n: usize) -> f64 {
    2.0 * n as f64
}

/// TRIAD bytes per sweep including the write-allocate of `a`
/// (Table 2: `32n`).
pub fn triad_bytes(n: usize) -> f64 {
    32.0 * n as f64
}

/// Allocation footprint of the three arrays.
pub fn stream_footprint(n: usize) -> f64 {
    24.0 * n as f64
}

/// Access profile for `reps` TRIAD sweeps over arrays of `n` doubles: pure
/// streaming, but the arrays themselves are re-swept every repetition, so
/// the reuse working set is the whole footprint — the canonical Stepping
/// Model curve (Figs. 12 and 23).
pub fn stream_profile(n: usize, reps: usize, threads: usize) -> AccessProfile {
    assert!(n > 0 && reps > 0 && threads > 0);
    let footprint = stream_footprint(n);
    let bytes = triad_bytes(n) * reps as f64;
    let mut ph = Phase::new("triad", triad_flops(n) * reps as f64, bytes);
    ph.tiers = vec![Tier::new(footprint, 1.0)];
    ph.prefetch = 0.98;
    ph.stream_prefetch = 0.98;
    ph.mlp = 10.0;
    ph.threads = threads;
    ph.compute_eff = 0.3;
    AccessProfile::single("stream", ph, footprint)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrays(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5).collect();
        (vec![0.0; n], b, c)
    }

    #[test]
    fn copy_scale_add() {
        let (mut a, b, c) = arrays(100);
        copy(&mut a, &b);
        assert_eq!(a, b);
        scale(&mut a, &b, 3.0);
        assert!(a.iter().zip(&b).all(|(x, y)| *x == 3.0 * y));
        add(&mut a, &b, &c);
        assert!(a.iter().enumerate().all(|(i, &x)| x == b[i] + c[i]));
    }

    #[test]
    fn triad_matches_serial() {
        let (mut a1, b, c) = arrays(1000);
        let mut a2 = a1.clone();
        triad(&mut a1, &b, &c, 2.5);
        triad_serial(&mut a2, &b, &c, 2.5);
        assert_eq!(a1, a2);
    }

    #[test]
    fn table2_accounting() {
        assert_eq!(triad_flops(1000), 2000.0);
        assert_eq!(triad_bytes(1000), 32_000.0);
        let p = stream_profile(1000, 4, 8);
        p.validate().unwrap();
        // AI = 2/32 = 0.0625 (Fig. 4's leftmost kernel).
        assert!((p.arithmetic_intensity() - 0.0625).abs() < 1e-12);
        assert_eq!(p.footprint, 24_000.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut a = vec![0.0; 3];
        triad(&mut a, &[1.0; 4], &[1.0; 3], 1.0);
    }
}
