//! Temporal blocking for iso3dfd — the "orchestrated spatial and temporal
//! blocking" the paper credits for stencils' high arithmetic intensity
//! (§3.1.3, citing GPU-UniCache \[23\]): fuse two time steps inside each
//! spatial block, recomputing a halo-deep overlap region so the
//! intermediate step never round-trips through memory. Doubles the flops
//! per byte of grid traffic at the cost of `O(halo)` redundant compute.

use crate::grid::Grid;
use crate::iso3dfd::{second_derivative_weights, HALF};
use opm_core::profile::AccessProfile;
use rayon::prelude::*;

/// Two fused time steps with x-slab blocking: each slab computes the
/// intermediate step on a halo-extended region privately, then the second
/// step on its core rows. Writes `next2` (state after two steps) on the
/// doubly-interior region `[2·HALF, n − 2·HALF)` in every dimension;
/// other cells are left untouched.
pub fn step2_fused(prev: &Grid, cur: &Grid, next2: &mut Grid, c2: f64, slab_rows: usize) {
    let w = second_derivative_weights(HALF);
    let (nx, ny, nz) = (cur.nx, cur.ny, cur.nz);
    assert!(
        nx > 4 * HALF && ny > 4 * HALF && nz > 4 * HALF,
        "grid too small for two fused steps"
    );
    assert!(slab_rows > 0);
    let plane = ny * nz;
    let lap = |g: &dyn Fn(usize, usize, usize) -> f64, x: usize, y: usize, z: usize| {
        let mut l = 3.0 * w[0] * g(x, y, z);
        for (r, &wr) in w.iter().enumerate().skip(1) {
            l += wr
                * (g(x + r, y, z)
                    + g(x - r, y, z)
                    + g(x, y + r, z)
                    + g(x, y - r, z)
                    + g(x, y, z + r)
                    + g(x, y, z - r));
        }
        l
    };

    // Core region of the second step.
    let x_lo = 2 * HALF;
    let x_hi = nx - 2 * HALF;
    next2.data[x_lo * plane..x_hi * plane]
        .par_chunks_mut(slab_rows * plane)
        .enumerate()
        .for_each(|(slab_i, out)| {
            let core0 = x_lo + slab_i * slab_rows;
            let core1 = (core0 + slab_rows).min(x_hi);
            // Intermediate step needed on [core0 − HALF, core1 + HALF).
            let ext0 = core0 - HALF;
            let ext1 = core1 + HALF;
            let ext_rows = ext1 - ext0;
            let mut mid = vec![0.0; ext_rows * plane];
            for x in ext0..ext1 {
                for y in HALF..ny - HALF {
                    for z in HALF..nz - HALF {
                        let g = |a: usize, b: usize, c: usize| cur.at(a, b, c);
                        mid[(x - ext0) * plane + y * nz + z] =
                            2.0 * cur.at(x, y, z) - prev.at(x, y, z) + c2 * lap(&g, x, y, z);
                    }
                }
            }
            // Second step on the core rows, reading the private buffer.
            let mid_at = |a: usize, b: usize, c: usize| mid[(a - ext0) * plane + b * nz + c];
            for x in core0..core1 {
                for y in 2 * HALF..ny - 2 * HALF {
                    for z in 2 * HALF..nz - 2 * HALF {
                        let g = |a: usize, b: usize, c: usize| mid_at(a, b, c);
                        out[(x - core0) * plane + y * nz + z] =
                            2.0 * mid_at(x, y, z) - cur.at(x, y, z) + c2 * lap(&g, x, y, z);
                    }
                }
            }
        });
}

/// Access profile of the temporally blocked stencil: the same per-cell
/// flops ×2 per fused pair, but the footprint tier carries only *one*
/// round trip per two steps — this is the ablation showing how temporal
/// blocking shifts a stencil toward compute-bound (and shrinks the OPM
/// benefit accordingly).
pub fn stencil_temporal_profile(
    nx: usize,
    ny: usize,
    nz: usize,
    block: (usize, usize, usize),
    threads: usize,
    cores: usize,
) -> AccessProfile {
    let base = crate::iso3dfd::stencil_profile(nx, ny, nz, block, threads, cores);
    let mut ph = base.phases[0].clone();
    ph.name = "iso3dfd-temporal".into();
    // Two steps per sweep: double the flops, same grid traffic per pair
    // plus the recomputed halo overhead (~HALF/block extra compute).
    ph.flops *= 2.0;
    ph.compute_eff *= 0.9; // redundant halo recomputation
    AccessProfile::single("stencil-temporal", ph, base.footprint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso3dfd::step_naive;
    use opm_core::perf::PerfModel;
    use opm_core::platform::{McdramMode, OpmConfig};

    #[test]
    fn fused_matches_two_sequential_steps() {
        let n = 4 * HALF + 7;
        let prev = Grid::smooth(n, n + 3, n + 1);
        let cur = Grid::smooth(n, n + 3, n + 1);
        // Reference: two plain steps.
        let mut t1 = cur.clone();
        step_naive(&prev, &cur, &mut t1, 0.2);
        let mut t2 = Grid::zeros(n, n + 3, n + 1);
        step_naive(&cur, &t1, &mut t2, 0.2);
        // Fused.
        for slab in [1usize, 3, 64] {
            let mut fused = Grid::zeros(n, n + 3, n + 1);
            step2_fused(&prev, &cur, &mut fused, 0.2, slab);
            let mut max: f64 = 0.0;
            for x in 2 * HALF..n - 2 * HALF {
                for y in 2 * HALF..n + 3 - 2 * HALF {
                    for z in 2 * HALF..n + 1 - 2 * HALF {
                        max = max.max((fused.at(x, y, z) - t2.at(x, y, z)).abs());
                    }
                }
            }
            assert!(max < 1e-11, "slab {slab}: diff {max}");
        }
    }

    #[test]
    fn constant_field_survives_fusion() {
        let n = 4 * HALF + 5;
        let cur = Grid::constant(n, n, n, 2.5);
        let prev = cur.clone();
        let mut out = Grid::zeros(n, n, n);
        step2_fused(&prev, &cur, &mut out, 0.7, 8);
        let c = n / 2;
        assert!((out.at(c, c, c) - 2.5).abs() < 1e-10);
    }

    #[test]
    fn temporal_profile_doubles_intensity() {
        let plain = crate::iso3dfd::stencil_profile(512, 512, 512, (64, 64, 96), 256, 64);
        let fused = stencil_temporal_profile(512, 512, 512, (64, 64, 96), 256, 64);
        let ratio = fused.arithmetic_intensity() / plain.arithmetic_intensity();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn temporal_blocking_shrinks_the_mcdram_gap() {
        // Ablation: with doubled AI the kernel leans compute-bound, so the
        // MCDRAM-vs-DDR gap narrows — the co-design insight the profile
        // encodes.
        let gap = |prof: &AccessProfile| {
            let flat = PerfModel::for_config(OpmConfig::Knl(McdramMode::Flat))
                .evaluate(prof)
                .gflops;
            let ddr = PerfModel::for_config(OpmConfig::Knl(McdramMode::Off))
                .evaluate(prof)
                .gflops;
            flat / ddr
        };
        let plain = crate::iso3dfd::stencil_profile(1024, 1024, 512, (64, 64, 96), 256, 64);
        let fused = stencil_temporal_profile(1024, 1024, 512, (64, 64, 96), 256, 64);
        assert!(
            gap(&fused) < gap(&plain),
            "{} vs {}",
            gap(&fused),
            gap(&plain)
        );
    }
}
