//! Vector folding — YASK's signature data layout (paper §4.1.3: iso3dfd is
//! "optimized by vector folding and cache blocking"). Instead of storing
//! the grid z-linearly, elements are grouped into small `fx × fy × fz`
//! SIMD *folds* stored contiguously; a 16th-order stencil then reads each
//! fold once for several outputs instead of gathering 8 separate
//! cache lines per axis, multiplying effective L1/L2 locality.

use crate::grid::Grid;
use crate::iso3dfd::{second_derivative_weights, HALF};

/// A 3D grid stored in folded (block-major) layout.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedGrid {
    /// Logical extent along x.
    pub nx: usize,
    /// Logical extent along y.
    pub ny: usize,
    /// Logical extent along z.
    pub nz: usize,
    /// Fold shape `(fx, fy, fz)`; extents must be multiples of the fold.
    pub fold: (usize, usize, usize),
    /// Block-major data: folds ordered x→y→z, elements within a fold
    /// x→y→z as well.
    pub data: Vec<f64>,
}

impl FoldedGrid {
    /// Fold an unfolded grid. Panics if extents aren't multiples of the
    /// fold shape.
    pub fn from_grid(g: &Grid, fold: (usize, usize, usize)) -> Self {
        let (fx, fy, fz) = fold;
        assert!(fx > 0 && fy > 0 && fz > 0, "fold dims must be positive");
        assert!(
            g.nx.is_multiple_of(fx) && g.ny.is_multiple_of(fy) && g.nz.is_multiple_of(fz),
            "grid extents must be multiples of the fold shape"
        );
        let mut f = FoldedGrid {
            nx: g.nx,
            ny: g.ny,
            nz: g.nz,
            fold,
            data: vec![0.0; g.nx * g.ny * g.nz],
        };
        for x in 0..g.nx {
            for y in 0..g.ny {
                for z in 0..g.nz {
                    let i = f.idx(x, y, z);
                    f.data[i] = g.at(x, y, z);
                }
            }
        }
        f
    }

    /// Unfold back to the linear layout.
    pub fn to_grid(&self) -> Grid {
        let mut g = Grid::zeros(self.nx, self.ny, self.nz);
        for x in 0..self.nx {
            for y in 0..self.ny {
                for z in 0..self.nz {
                    *g.at_mut(x, y, z) = self.data[self.idx(x, y, z)];
                }
            }
        }
        g
    }

    /// Linear index of `(x, y, z)` in the folded layout.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        let (fx, fy, fz) = self.fold;
        let fold_vol = fx * fy * fz;
        let blocks_y = self.ny / fy;
        let blocks_z = self.nz / fz;
        let (bx, ix) = (x / fx, x % fx);
        let (by, iy) = (y / fy, y % fy);
        let (bz, iz) = (z / fz, z % fz);
        let block = (bx * blocks_y + by) * blocks_z + bz;
        let intra = (ix * fy + iy) * fz + iz;
        block * fold_vol + intra
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.idx(x, y, z)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, x: usize, y: usize, z: usize) -> &mut f64 {
        let i = self.idx(x, y, z);
        &mut self.data[i]
    }
}

/// One iso3dfd time step on folded grids (interior only), numerically
/// identical to [`crate::iso3dfd::step_naive`] on the unfolded layout.
pub fn step_folded(prev: &FoldedGrid, cur: &FoldedGrid, next: &mut FoldedGrid, c2: f64) {
    assert_eq!(cur.fold, prev.fold);
    assert_eq!(cur.fold, next.fold);
    let w = second_derivative_weights(HALF);
    let (nx, ny, nz) = (cur.nx, cur.ny, cur.nz);
    assert!(
        nx > 2 * HALF && ny > 2 * HALF && nz > 2 * HALF,
        "grid too small"
    );
    for x in HALF..nx - HALF {
        for y in HALF..ny - HALF {
            for z in HALF..nz - HALF {
                let mut lap = 3.0 * w[0] * cur.at(x, y, z);
                for (r, &wr) in w.iter().enumerate().skip(1) {
                    lap += wr
                        * (cur.at(x + r, y, z)
                            + cur.at(x - r, y, z)
                            + cur.at(x, y + r, z)
                            + cur.at(x, y - r, z)
                            + cur.at(x, y, z + r)
                            + cur.at(x, y, z - r));
                }
                *next.at_mut(x, y, z) = 2.0 * cur.at(x, y, z) - prev.at(x, y, z) + c2 * lap;
            }
        }
    }
}

/// Number of distinct cache lines touched by one stencil evaluation at the
/// given point, for a layout with the given fold (64-byte lines): the
/// locality metric vector folding improves.
pub fn lines_touched(g: &FoldedGrid, x: usize, y: usize, z: usize) -> usize {
    let mut lines = std::collections::HashSet::new();
    let mut touch = |xx: usize, yy: usize, zz: usize| {
        lines.insert(g.idx(xx, yy, zz) * 8 / 64);
    };
    touch(x, y, z);
    for r in 1..=HALF {
        touch(x + r, y, z);
        touch(x - r, y, z);
        touch(x, y + r, z);
        touch(x, y - r, z);
        touch(x, y, z + r);
        touch(x, y, z - r);
    }
    lines.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso3dfd::step_naive;

    const FOLD: (usize, usize, usize) = (4, 1, 2);

    #[test]
    fn fold_round_trip() {
        let g = Grid::smooth(8, 4, 6);
        let f = FoldedGrid::from_grid(&g, FOLD);
        assert_eq!(f.to_grid(), g);
    }

    #[test]
    fn idx_is_a_bijection() {
        let g = Grid::zeros(8, 4, 6);
        let f = FoldedGrid::from_grid(&g, FOLD);
        let mut seen = [false; 8 * 4 * 6];
        for x in 0..8 {
            for y in 0..4 {
                for z in 0..6 {
                    let i = f.idx(x, y, z);
                    assert!(!seen[i], "collision at ({x},{y},{z})");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn folds_are_contiguous() {
        let g = Grid::zeros(8, 4, 6);
        let f = FoldedGrid::from_grid(&g, FOLD);
        // All elements of the first fold occupy indices 0..8.
        let mut idxs: Vec<usize> = Vec::new();
        for x in 0..4 {
            for z in 0..2 {
                idxs.push(f.idx(x, 0, z));
            }
        }
        idxs.sort_unstable();
        assert_eq!(idxs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn folded_step_matches_unfolded() {
        let (nx, ny, nz) = (4 * (HALF / 2 + 3), 3 * HALF, 2 * (HALF + 2));
        let prev = Grid::smooth(nx, ny, nz);
        let cur = Grid::smooth(nx, ny, nz);
        let mut reference = Grid::zeros(nx, ny, nz);
        step_naive(&prev, &cur, &mut reference, 0.3);
        let fp = FoldedGrid::from_grid(&prev, FOLD);
        let fc = FoldedGrid::from_grid(&cur, FOLD);
        let mut fnext = FoldedGrid::from_grid(&Grid::zeros(nx, ny, nz), FOLD);
        step_folded(&fp, &fc, &mut fnext, 0.3);
        let unfolded = fnext.to_grid();
        let mut max: f64 = 0.0;
        for x in HALF..nx - HALF {
            for y in HALF..ny - HALF {
                for z in HALF..nz - HALF {
                    max = max.max((unfolded.at(x, y, z) - reference.at(x, y, z)).abs());
                }
            }
        }
        assert!(max < 1e-12, "diff {max}");
    }

    #[test]
    fn folding_reduces_lines_touched_per_point() {
        // The YASK claim: a 3D fold touches fewer distinct lines per stencil
        // evaluation than the z-linear layout (fold (1,1,1)).
        let n = 4 * HALF;
        let g = Grid::zeros(n, n, n);
        let linear = FoldedGrid::from_grid(&g, (1, 1, 1));
        let folded = FoldedGrid::from_grid(&g, (4, 1, 2));
        let c = n / 2;
        let l_linear = lines_touched(&linear, c, c, c);
        let l_folded = lines_touched(&folded, c, c, c);
        assert!(
            l_folded < l_linear,
            "folded {l_folded} should touch fewer lines than linear {l_linear}"
        );
    }

    #[test]
    #[should_panic(expected = "multiples of the fold")]
    fn misaligned_extent_panics() {
        let g = Grid::zeros(7, 4, 6);
        FoldedGrid::from_grid(&g, FOLD);
    }
}
