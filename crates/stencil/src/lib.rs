//! # opm-stencil
//!
//! Structured-grid substrate of the OPM reproduction: the YASK "iso3dfd"
//! kernel (16th-order-in-space, 2nd-order-in-time isotropic finite
//! difference with cache blocking) and the STREAM bandwidth kernels —
//! the two ends of the paper's "other algorithms" group (§3.1.3).

#![warn(missing_docs)]
// Numeric kernels co-index several arrays in lockstep; explicit index loops
// are the clearer idiom there.
#![allow(clippy::needless_range_loop)]

pub mod folding;
pub mod grid;
pub mod iso3dfd;
pub mod stream;
pub mod temporal;

pub use folding::{step_folded, FoldedGrid};
pub use grid::Grid;
pub use iso3dfd::{
    second_derivative_weights, stencil_flops, stencil_footprint, stencil_interior_flops,
    stencil_profile, step_blocked, step_naive, HALF,
};
pub use stream::{stream_footprint, stream_profile, triad, triad_bytes, triad_flops};
pub use temporal::{stencil_temporal_profile, step2_fused};
