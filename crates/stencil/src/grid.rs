//! Dense 3D scalar grid for the finite-difference stencil, z fastest.

/// A 3D grid of `f64`, laid out `x → y → z` with z contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Extent along x.
    pub nx: usize,
    /// Extent along y.
    pub ny: usize,
    /// Extent along z.
    pub nz: usize,
    /// Data, `len == nx · ny · nz`.
    pub data: Vec<f64>,
}

impl Grid {
    /// Zero grid.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        Grid {
            nx,
            ny,
            nz,
            data: vec![0.0; nx * ny * nz],
        }
    }

    /// Constant-valued grid.
    pub fn constant(nx: usize, ny: usize, nz: usize, v: f64) -> Self {
        let mut g = Self::zeros(nx, ny, nz);
        g.data.fill(v);
        g
    }

    /// Deterministic smooth test field.
    pub fn smooth(nx: usize, ny: usize, nz: usize) -> Self {
        let mut g = Self::zeros(nx, ny, nz);
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let i = g.idx(x, y, z);
                    g.data[i] =
                        (x as f64 * 0.3).sin() + (y as f64 * 0.2).cos() + (z as f64 * 0.1).sin();
                }
            }
        }
        g
    }

    /// Linear index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.ny + y) * self.nz + z
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.idx(x, y, z)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, x: usize, y: usize, z: usize) -> &mut f64 {
        let i = self.idx(x, y, z);
        &mut self.data[i]
    }

    /// Cells in the grid.
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> f64 {
        (self.data.len() * 8) as f64
    }

    /// Largest absolute element difference.
    pub fn max_abs_diff(&self, other: &Grid) -> f64 {
        assert_eq!(self.data.len(), other.data.len());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_z_fastest() {
        let g = Grid::zeros(2, 3, 4);
        assert_eq!(g.idx(0, 0, 1), 1);
        assert_eq!(g.idx(0, 1, 0), 4);
        assert_eq!(g.idx(1, 0, 0), 12);
        assert_eq!(g.cells(), 24);
        assert_eq!(g.footprint_bytes(), 192.0);
    }

    #[test]
    fn constant_fill() {
        let g = Grid::constant(2, 2, 2, 7.5);
        assert!(g.data.iter().all(|&v| v == 7.5));
    }

    #[test]
    fn smooth_is_deterministic() {
        assert_eq!(Grid::smooth(3, 3, 3), Grid::smooth(3, 3, 3));
    }

    #[test]
    fn diff_detects_change() {
        let a = Grid::zeros(2, 2, 2);
        let mut b = a.clone();
        *b.at_mut(1, 1, 1) = 3.0;
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }
}
