//! The "iso3dfd" kernel of YASK (paper §3.1.3): 3D isotropic finite
//! difference, **16th order in space, 2nd order in time** — the wave
//! equation update
//!
//! ```text
//! next = 2·cur − prev + (v·dt)² · ∇²cur
//! ```
//!
//! with the Laplacian evaluated by a 49-point star stencil (8 points per
//! side per axis plus the center): 61 floating-point operations per cell
//! touching 48 neighbors, exactly the accounting of Table 2.
//!
//! The 16th-order second-derivative weights are computed from the standard
//! central-difference closed form rather than hardcoded, and validated by
//! the property tests (a constant field is a fixed point; a quadratic field
//! has an exact Laplacian).

use crate::grid::Grid;
use opm_core::profile::{AccessProfile, Phase, Tier};
use rayon::prelude::*;

/// Stencil half-width (16th order = 8 points per side).
pub const HALF: usize = 8;

/// Central-difference weights for the second derivative at order `2·m`:
/// `w_k = 2·(−1)^{k+1}·(m!)² / ((m−k)!·(m+k)!·k²)` for `k ≥ 1` and
/// `w_0 = −2·Σ w_k`.
pub fn second_derivative_weights(m: usize) -> Vec<f64> {
    assert!(m >= 1, "need at least first order half-width");
    let fact = |n: usize| (1..=n).map(|v| v as f64).product::<f64>();
    let m_fact_sq = fact(m) * fact(m);
    let mut w = vec![0.0; m + 1];
    for k in 1..=m {
        let sign = if k % 2 == 1 { 1.0 } else { -1.0 };
        w[k] = 2.0 * sign * m_fact_sq / (fact(m - k) * fact(m + k) * (k * k) as f64);
    }
    w[0] = -2.0 * w[1..].iter().sum::<f64>();
    w
}

/// One time step of the naive (unblocked) reference. Updates interior cells
/// only (a `HALF`-wide halo is left untouched). `c2` is `(v·dt)²`.
pub fn step_naive(prev: &Grid, cur: &Grid, next: &mut Grid, c2: f64) {
    let w = second_derivative_weights(HALF);
    let (nx, ny, nz) = (cur.nx, cur.ny, cur.nz);
    assert!(
        nx > 2 * HALF && ny > 2 * HALF && nz > 2 * HALF,
        "grid too small"
    );
    for x in HALF..nx - HALF {
        for y in HALF..ny - HALF {
            for z in HALF..nz - HALF {
                let mut lap = 3.0 * w[0] * cur.at(x, y, z);
                for (r, &wr) in w.iter().enumerate().skip(1) {
                    lap += wr
                        * (cur.at(x + r, y, z)
                            + cur.at(x - r, y, z)
                            + cur.at(x, y + r, z)
                            + cur.at(x, y - r, z)
                            + cur.at(x, y, z + r)
                            + cur.at(x, y, z - r));
                }
                *next.at_mut(x, y, z) = 2.0 * cur.at(x, y, z) - prev.at(x, y, z) + c2 * lap;
            }
        }
    }
}

/// One time step with cache blocking (the YASK `-b` option; the paper uses
/// 64×64×96 blocks ≈ 3 MB) and Rayon parallelism across x-blocks.
pub fn step_blocked(
    prev: &Grid,
    cur: &Grid,
    next: &mut Grid,
    c2: f64,
    block: (usize, usize, usize),
) {
    let w = second_derivative_weights(HALF);
    let (bx, by, bz) = block;
    assert!(bx > 0 && by > 0 && bz > 0, "block dims must be positive");
    let (nx, ny, nz) = (cur.nx, cur.ny, cur.nz);
    assert!(
        nx > 2 * HALF && ny > 2 * HALF && nz > 2 * HALF,
        "grid too small"
    );
    // Parallelize across x-slabs of `bx` rows; each slab owns a disjoint
    // region of `next`.
    let plane = ny * nz;
    let interior_lo = HALF;
    let interior_hi = nx - HALF;
    next.data
        .par_chunks_mut(bx * plane)
        .enumerate()
        .for_each(|(slab_i, slab)| {
            let x0 = slab_i * bx;
            let x1 = (x0 + bx).min(nx);
            let x_lo = x0.max(interior_lo);
            let x_hi = x1.min(interior_hi);
            for xb in (x_lo..x_hi).step_by(bx) {
                // blocks in y and z within the slab
                let xe = (xb + bx).min(x_hi);
                for yb in (HALF..ny - HALF).step_by(by) {
                    let ye = (yb + by).min(ny - HALF);
                    for zb in (HALF..nz - HALF).step_by(bz) {
                        let ze = (zb + bz).min(nz - HALF);
                        for x in xb..xe {
                            for y in yb..ye {
                                for z in zb..ze {
                                    let mut lap = 3.0 * w[0] * cur.at(x, y, z);
                                    for (r, &wr) in w.iter().enumerate().skip(1) {
                                        lap += wr
                                            * (cur.at(x + r, y, z)
                                                + cur.at(x - r, y, z)
                                                + cur.at(x, y + r, z)
                                                + cur.at(x, y - r, z)
                                                + cur.at(x, y, z + r)
                                                + cur.at(x, y, z - r));
                                    }
                                    let i = (x - x0) * plane + y * nz + z;
                                    slab[i] = 2.0 * cur.at(x, y, z) - prev.at(x, y, z) + c2 * lap;
                                }
                            }
                        }
                    }
                }
            }
        });
}

/// Run `steps` time steps, ping-ponging the three grids. Returns the final
/// (cur, prev) pair.
pub fn run(
    mut prev: Grid,
    mut cur: Grid,
    steps: usize,
    c2: f64,
    block: (usize, usize, usize),
) -> (Grid, Grid) {
    let mut next = cur.clone();
    for _ in 0..steps {
        step_blocked(&prev, &cur, &mut next, c2, block);
        std::mem::swap(&mut prev, &mut cur);
        std::mem::swap(&mut cur, &mut next);
        // after swaps: cur = new state, prev = old cur, next = recycled
    }
    (cur, prev)
}

/// Flops per updated cell (Table 2: 61).
pub const FLOPS_PER_CELL: f64 = 61.0;

/// Flop count for one sweep of an `nx × ny × nz` *domain*. YASK allocates
/// the halo outside the domain, so every domain cell is updated (the paper's
/// smallest grids, e.g. 32×16×16, are all-domain).
pub fn stencil_flops(nx: usize, ny: usize, nz: usize) -> f64 {
    FLOPS_PER_CELL * (nx * ny * nz) as f64
}

/// Flop count for one sweep updating only the interior of an *allocated*
/// grid whose outer `HALF` cells are halo (what [`step_naive`] /
/// [`step_blocked`] compute).
pub fn stencil_interior_flops(nx: usize, ny: usize, nz: usize) -> f64 {
    let ix = nx.saturating_sub(2 * HALF) as f64;
    let iy = ny.saturating_sub(2 * HALF) as f64;
    let iz = nz.saturating_sub(2 * HALF) as f64;
    FLOPS_PER_CELL * ix * iy * iz
}

/// Allocation footprint (prev + cur + next grids).
pub fn stencil_footprint(nx: usize, ny: usize, nz: usize) -> f64 {
    3.0 * (nx * ny * nz) as f64 * 8.0
}

/// Access profile for one blocked sweep.
///
/// With spatial blocking, neighbor reads are served by the block working
/// set (paper: 64×64×96 ≈ 3 MB); the per-sweep compulsory read/write of the
/// grids (16 B/cell, giving Table 2's AI of 61/8 per point update) re-uses
/// the full footprint across time steps — the footprint tier is what forms
/// the huge MCDRAM cache peak of Fig. 24.
pub fn stencil_profile(
    nx: usize,
    ny: usize,
    nz: usize,
    block: (usize, usize, usize),
    threads: usize,
    cores: usize,
) -> AccessProfile {
    assert!(threads > 0 && cores > 0);
    let cells = (nx * ny * nz) as f64;
    let footprint = stencil_footprint(nx, ny, nz);
    // Effective hierarchy traffic: ~6 accesses per cell survive the
    // register/L1 plane buffers.
    let bytes = cells * 8.0 * 6.0;
    let block_ws = (block.0 * block.1 * (block.2 + 2 * HALF)) as f64 * 8.0 * 3.0;
    let mut ph = Phase::new("iso3dfd", stencil_flops(nx, ny, nz), bytes);
    ph.tiers = vec![
        // Neighbor reuse within the cache block.
        Tier::new(block_ws.max(4096.0), 0.30),
        // Per-sweep grid traffic (~32 B/cell: read + write + write-allocate
        // + halo re-reads), reused across time steps. Calibrated against
        // Table 5's DDR-vs-MCDRAM stencil throughputs (189.9 vs 808.6
        // GFlop/s on KNL).
        Tier::new(footprint, 0.667),
    ];
    ph.prefetch = 0.92;
    ph.stream_prefetch = 0.95;
    ph.mlp = 10.0;
    ph.threads = threads;
    // Paper Tables 4–5: ~61.9/236.8 ≈ 0.26 on Broadwell, 808/3072 ≈ 0.26 on
    // KNL — the same fraction on both machines.
    ph.compute_eff = 0.28;
    AccessProfile::single("stencil", ph, footprint)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_zero_and_match_known_values() {
        let w = second_derivative_weights(HALF);
        let total = w[0] + 2.0 * w[1..].iter().sum::<f64>();
        assert!(total.abs() < 1e-12);
        assert!((w[1] - 1.7777777777).abs() < 1e-8);
        assert!((w[2] + 0.3111111111).abs() < 1e-8);
        // Order-2 sanity: the classic [1, -2, 1].
        let w2 = second_derivative_weights(1);
        assert!((w2[0] + 2.0).abs() < 1e-12);
        assert!((w2[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_field_has_exact_laplacian() {
        // f = x²: d²f/dx² = 2 exactly for any central difference order.
        let n = 2 * HALF + 3;
        let mut cur = Grid::zeros(n, n, n);
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    *cur.at_mut(x, y, z) = (x * x) as f64;
                }
            }
        }
        let prev = cur.clone();
        let mut next = Grid::zeros(n, n, n);
        step_naive(&prev, &cur, &mut next, 1.0);
        let c = n / 2;
        // next = 2f - f + 1·∇²f = f + 2.
        let expect = cur.at(c, c, c) + 2.0;
        assert!((next.at(c, c, c) - expect).abs() < 1e-9);
    }

    #[test]
    fn constant_field_is_fixed_point() {
        let n = 2 * HALF + 4;
        let cur = Grid::constant(n, n, n, 3.25);
        let prev = cur.clone();
        let mut next = Grid::zeros(n, n, n);
        step_naive(&prev, &cur, &mut next, 0.5);
        assert!((next.at(n / 2, n / 2, n / 2) - 3.25).abs() < 1e-10);
    }

    #[test]
    fn blocked_matches_naive() {
        let n = 2 * HALF + 9;
        let cur = Grid::smooth(n, n + 2, n + 5);
        let prev = Grid::smooth(n, n + 2, n + 5);
        let mut a = Grid::zeros(n, n + 2, n + 5);
        let mut b = Grid::zeros(n, n + 2, n + 5);
        step_naive(&prev, &cur, &mut a, 0.3);
        for block in [(4, 4, 4), (3, 7, 5), (64, 64, 96)] {
            step_blocked(&prev, &cur, &mut b, 0.3, block);
            // Compare interiors (blocked leaves the halo at its input
            // state, naive leaves it zero — both untouched regions).
            let mut max = 0.0f64;
            for x in HALF..n - HALF {
                for y in HALF..n + 2 - HALF {
                    for z in HALF..n + 5 - HALF {
                        max = max.max((a.at(x, y, z) - b.at(x, y, z)).abs());
                    }
                }
            }
            assert!(max < 1e-12, "block {block:?}: diff {max}");
        }
    }

    #[test]
    fn run_advances_state() {
        let n = 2 * HALF + 6;
        let cur = Grid::smooth(n, n, n);
        let prev = cur.clone();
        let (after, _) = run(prev, cur.clone(), 2, 0.1, (8, 8, 8));
        assert!(after.max_abs_diff(&cur) > 1e-6);
    }

    #[test]
    fn flop_accounting() {
        assert_eq!(stencil_flops(20, 20, 20), 61.0 * 8000.0);
        assert_eq!(stencil_interior_flops(20, 20, 20), 61.0 * 64.0);
        assert_eq!(stencil_interior_flops(16, 20, 20), 0.0);
    }

    #[test]
    fn profile_is_compute_leaning() {
        let p = stencil_profile(256, 256, 256, (64, 64, 96), 8, 4);
        p.validate().unwrap();
        // Table 2: AI = 7.625 at the DRAM level; our hierarchy-level AI is
        // lower (it counts cached traffic) but still in the "medium" class.
        assert!(p.arithmetic_intensity() > 0.8);
    }
}
