//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of the API for the workspace's bench targets to
//! compile and produce useful numbers offline: benchmark groups, throughput
//! annotation, `bench_function` / `bench_with_input`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a
//! short warm-up followed by a fixed number of timed iterations and prints
//! mean wall time (no statistical analysis, HTML reports, or comparisons).

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }
}

impl AsRef<str> for BenchmarkId {
    fn as_ref(&self) -> &str {
        &self.name
    }
}

/// Per-iteration measurement driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Time `f` over warm-up + measured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            std_black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the work done per iteration (reported as a rate).
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    fn run_one(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: 10,
            mean_ns: 0.0,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:.2} GiB/s",
                    n as f64 / b.mean_ns * 1e9 / (1u64 << 30) as f64
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:.2} Melem/s", n as f64 / b.mean_ns * 1e9 / 1e6)
            }
            None => String::new(),
        };
        println!("{}/{id}: {:.3} ms/iter{rate}", self.name, b.mean_ns / 1e6);
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        self.run_one(id.as_ref(), f);
    }

    /// Benchmark a closure against one input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run_one(&id.name, |b| f(b, input));
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _c: self,
        }
    }

    /// Benchmark a closure outside a group.
    pub fn bench_function(&mut self, id: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Collect benchmark functions into one runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Entry point running every group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        let mut ran = false;
        g.bench_function("f", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert!(ran);
    }
}
