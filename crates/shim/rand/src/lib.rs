//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! package provides the (small) subset of the `rand` API the repo uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`] over integer and float ranges. The generator is
//! SplitMix64 — deterministic, seedable, and statistically good enough for
//! synthetic-workload generation; it is *not* the upstream ChaCha-based
//! `StdRng`, so streams differ from real `rand`, but every consumer in this
//! repo only relies on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform f64 in `[0, 1)` (53-bit mantissa construction).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::Rng::random_range`.
pub trait RngExt: RngCore {
    /// Uniform sample from a range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<T: RngCore> RngExt for T {}

/// A range that knows how to sample itself from an RNG.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(7).random_range(0usize..1000) == c.random_range(0usize..1000)
            })
            .count();
        assert!(same < 100);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<f64> = (0..500).map(|_| rng.random_range(0.0f64..1.0)).collect();
        assert!(vals.iter().any(|&v| v < 0.2));
        assert!(vals.iter().any(|&v| v > 0.8));
    }
}
