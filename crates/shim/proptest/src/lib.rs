//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! strategies for numeric ranges, tuples, [`Just`], `collection::vec`, and
//! simple `[class]{lo,hi}` string patterns, plus the [`proptest!`] macro
//! and `prop_assert*` assertions. Cases are generated from a seeded RNG
//! (deterministic per test name), so failures are reproducible. There is
//! **no shrinking**: a failing case panics with its inputs via the normal
//! assertion message.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Per-case RNG handed to strategies; deterministic per (test, case).
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// RNG for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5bd1_e995)),
        }
    }

    fn usize_in(&mut self, r: Range<usize>) -> usize {
        self.rng.random_range(r)
    }
}

/// A value generator. Mirrors `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, then build a dependent strategy from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returning a fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(usize, u64, u32, f64, f32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// String strategy from a `[class]{lo,hi}` pattern (the only regex shape
/// the workspace uses). Character classes support literal chars and `a-z`
/// ranges; a trailing `-` is literal. Patterns not of this shape fall back
/// to sampling 1–8 chars from the pattern's own characters.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
            (
                self.chars().filter(|c| c.is_ascii_graphic()).collect(),
                1,
                8,
            )
        });
        let len = rng.usize_in(lo..hi + 1);
        (0..len)
            .map(|_| alphabet[rng.usize_in(0..alphabet.len().max(1))])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            for c in a as u32..=b as u32 {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if alphabet.is_empty() || lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a uniformly chosen length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `size` elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Assert inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                $body
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    (cfg = ($cfg:expr);) => {};
}

/// Mirrors `proptest::prelude::*` for the names this workspace imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(n in 2usize..10, pair in (0u64..5, -1.0f64..1.0)) {
            prop_assert!((2..10).contains(&n));
            prop_assert!(pair.0 < 5);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn flat_map_dependent(v in (1usize..6).prop_flat_map(|n| collection::vec(0usize..n, 1..4))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn mapped(m in (0usize..4).prop_map(|x| x * 2)) {
            prop_assert!(m % 2 == 0 && m < 8);
        }

        #[test]
        fn string_pattern(s in "[a-c0-1-]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| "abc01-".contains(c)));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = super::TestRng::for_case("x", 0);
        let mut b = super::TestRng::for_case("x", 0);
        let s: String = Strategy::sample(&"[a-z]{8,8}", &mut a);
        let t: String = Strategy::sample(&"[a-z]{8,8}", &mut b);
        assert_eq!(s, t);
    }
}
