//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this package provides
//! the `rayon::prelude` surface the workspace uses (`par_iter`,
//! `par_iter_mut`, `into_par_iter`, `par_chunks_mut`, `flat_map_iter`) as
//! **sequential** adapters over the standard iterators. Every call site
//! keeps compiling and produces identical results in deterministic order;
//! data-parallel execution of the experiment sweeps is provided one level
//! up by `opm_kernels::engine`, which schedules whole sweep points across
//! real threads instead of parallelizing inner loops.

/// Number of worker threads the process would use: `OPM_THREADS` override,
/// else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("OPM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Run two closures (sequentially here) and return both results — the
/// signature of `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential slice adapters mirroring `rayon::prelude::ParallelSlice`.
pub trait ParallelSlice<T> {
    /// Sequential stand-in for `par_iter`.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// Sequential mutable-slice adapters mirroring
/// `rayon::prelude::ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for `par_iter_mut`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    /// Sequential stand-in for `par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk)
    }
}

/// Sequential stand-in for `rayon::prelude::IntoParallelIterator`.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Sequential stand-in for `into_par_iter`.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// Rayon-only combinators that have direct sequential equivalents.
pub trait ParallelIteratorExt: Iterator + Sized {
    /// `flat_map_iter` is rayon's "flat-map with a serial inner iterator";
    /// sequentially it is just `flat_map`.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// Chunk-size hint; a no-op sequentially.
    fn with_min_len(self, _len: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIteratorExt for I {}

/// The prelude mirrors `rayon::prelude::*` for the traits above.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIteratorExt, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_behave_like_std() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let mut w = vec![0; 4];
        w.par_iter_mut()
            .zip(v.par_iter())
            .for_each(|(o, &i)| *o = i);
        assert_eq!(w, v);
        let mut c = vec![1; 6];
        c.par_chunks_mut(2).enumerate().for_each(|(i, ch)| {
            for x in ch {
                *x = i;
            }
        });
        assert_eq!(c, vec![0, 0, 1, 1, 2, 2]);
        let f: Vec<usize> = vec![1usize, 2]
            .into_par_iter()
            .flat_map_iter(|n| 0..n)
            .collect();
        assert_eq!(f, vec![0, 0, 1]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
