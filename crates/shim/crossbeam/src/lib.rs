//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses: `crossbeam::scope` (mapped
//! onto `std::thread::scope`, so the threads are real) and
//! `crossbeam::deque::{Injector, Steal}` (a mutex-backed MPMC queue rather
//! than a lock-free deque — same semantics, adequate throughput for the
//! level-scheduled solver that consumes it).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Scoped-thread handle passed to `scope` closures. Mirrors the shape of
/// `crossbeam::thread::Scope`: `spawn` takes a closure that receives the
/// scope again (unused by our callers).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker thread.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a thread scope; all spawned threads join before returning.
/// Always `Ok` — a panicking worker propagates at join, as with
/// `std::thread::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Work-stealing deque module (mutex-backed here).
pub mod deque {
    use super::*;

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// Got an item.
        Success(T),
        /// Queue empty at the time of the attempt.
        Empty,
        /// Transient contention; try again.
        Retry,
    }

    /// FIFO injector queue shared by all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Empty queue.
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueue an item.
        pub fn push(&self, item: T) {
            self.q.lock().expect("injector poisoned").push_back(item);
        }

        /// Dequeue an item.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(v) => Steal::Success(v),
                    None => Steal::Empty,
                },
                Err(_) => Steal::Retry,
            }
        }

        /// True when no items are queued.
        pub fn is_empty(&self) -> bool {
            self.q.lock().map(|q| q.is_empty()).unwrap_or(true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn injector_is_fifo() {
        let q = Injector::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.steal(), Steal::Success(1));
        assert_eq!(q.steal(), Steal::Success(2));
        assert_eq!(q.steal(), Steal::Empty);
    }

    #[test]
    fn scope_joins_real_threads() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
