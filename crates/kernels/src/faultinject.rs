//! Deterministic fault injection for the sweep engine and the corpus
//! loaders.
//!
//! Long mode-sweep campaigns must tolerate per-point failures (a single
//! bad run on real OPM hardware costs hours), and the only way to *prove*
//! the fault-tolerance machinery works is to exercise it on demand. This
//! module turns the `OPM_FAULT_SPEC` environment variable into a
//! [`FaultPlan`]: a set of rules that decide — as a pure function of the
//! stage label, point index, matrix name, and attempt number — whether a
//! fault fires at a given site. Because the decision never involves wall
//! clock, thread identity, or global mutable state, an injected run is
//! reproducible at any thread count: the same points fault, the same
//! points recover, and the output CSVs are byte-identical across
//! `OPM_THREADS` settings.
//!
//! # Spec grammar
//!
//! ```text
//! spec  := rule ("," rule)*
//! rule  := kind "@" seg (":" seg)*
//! kind  := "panic" | "io"
//! seg   := "point" ":" <usize>     exact sweep-point index
//!        | "stage" ":" <substr>    only stages whose label contains <substr>
//!        | "matrix" ":" <name>     exact corpus matrix/file stem
//!        | "rate" ":" <f64>        seeded random rate over points
//!        | "seed" ":" <u64>        seed for the rate hash (default 0xA11CE)
//!        | "persist"               fire on every attempt, not just the first
//! ```
//!
//! Examples:
//!
//! * `panic@point:17` — point 17 of every stage panics on its first
//!   attempt (a retry recovers it).
//! * `io@matrix:simple3` — loading the corpus matrix `simple3` fails with
//!   an injected I/O error on the first attempt.
//! * `panic@stage:stream_curve:rate:0.05:seed:7:persist` — 5 % of the
//!   points of every `stream_curve` stage panic on *every* attempt, so
//!   retries are exhausted and the points are quarantined.
//!
//! Injected panics carry an [`InjectedFault`] payload, which the engine
//! downcasts to classify the failure as transient (retryable). A rule
//! without `persist` fires only on attempt 0, so the bounded-backoff
//! retry path recovers it; with `persist` it fires on every attempt and
//! the point ends in the error manifest with a placeholder result.

use std::panic::panic_any;

/// Default seed for `rate` rules without an explicit `seed` segment.
pub const DEFAULT_RATE_SEED: u64 = 0xA11CE;

/// What kind of failure a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A panic in the middle of a sweep-point evaluation.
    Panic,
    /// An I/O error (corpus file read); in compute stages it is simulated
    /// by a panic whose payload is classified as an I/O fault.
    Io,
}

impl FaultKind {
    /// Short label for manifests.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Io => "io",
        }
    }
}

/// One parsed injection rule. All selectors present must match for the
/// rule to fire (conjunction).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Failure kind to inject.
    pub kind: FaultKind,
    /// Exact sweep-point index selector.
    pub point: Option<usize>,
    /// Stage-label substring selector.
    pub stage: Option<String>,
    /// Exact matrix/file-stem selector.
    pub matrix: Option<String>,
    /// Seeded random rate over points (0.0–1.0).
    pub rate: Option<f64>,
    /// Seed for the rate hash.
    pub seed: u64,
    /// Fire on every attempt (exhausting retries) instead of only the
    /// first.
    pub persistent: bool,
}

impl FaultRule {
    fn fires_on_point(&self, stage: &str, index: usize, attempt: usize) -> bool {
        if self.matrix.is_some() {
            return false; // matrix rules only fire on corpus loads
        }
        if !self.persistent && attempt > 0 {
            return false;
        }
        if let Some(s) = &self.stage {
            if !stage.contains(s.as_str()) {
                return false;
            }
        }
        if let Some(p) = self.point {
            if p != index {
                return false;
            }
        }
        if let Some(rate) = self.rate {
            if !rate_hit(self.seed, stage, index, rate) {
                return false;
            }
        }
        // Every present selector matched. A bare rule with no selector at
        // all matches everything — the intentional "chaos monkey" spec.
        true
    }

    fn fires_on_matrix(&self, name: &str, attempt: usize) -> bool {
        if !self.persistent && attempt > 0 {
            return false;
        }
        match &self.matrix {
            Some(m) => m == name,
            None => false,
        }
    }
}

/// Deterministic per-(seed, stage, point) coin flip: FNV-1a over the seed,
/// stage label, and point index, compared against `rate`. Thread count and
/// evaluation order never enter the hash, so the same points fault in
/// every configuration.
fn rate_hit(seed: u64, stage: &str, index: usize, rate: f64) -> bool {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in stage.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    for b in (index as u64).to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Map to [0, 1) using the top 53 bits (exact in an f64).
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    u < rate
}

/// A parsed `OPM_FAULT_SPEC`: every rule is consulted at every site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The rules, in spec order (first match wins).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (kind, rest) = raw
                .split_once('@')
                .ok_or_else(|| format!("rule {raw:?}: expected <kind>@<selectors>"))?;
            let kind = match kind.trim() {
                "panic" => FaultKind::Panic,
                "io" => FaultKind::Io,
                other => return Err(format!("rule {raw:?}: unknown fault kind {other:?}")),
            };
            let mut rule = FaultRule {
                kind,
                point: None,
                stage: None,
                matrix: None,
                rate: None,
                seed: DEFAULT_RATE_SEED,
                persistent: false,
            };
            let mut toks = rest.split(':');
            while let Some(tok) = toks.next() {
                let tok = tok.trim();
                let mut arg = |name: &str| {
                    toks.next()
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .ok_or_else(|| format!("rule {raw:?}: {name} needs a value"))
                };
                match tok {
                    "point" => {
                        rule.point = Some(
                            arg("point")?
                                .parse()
                                .map_err(|_| format!("rule {raw:?}: bad point index"))?,
                        )
                    }
                    "stage" => rule.stage = Some(arg("stage")?.to_string()),
                    "matrix" => rule.matrix = Some(arg("matrix")?.to_string()),
                    "rate" => {
                        let r: f64 = arg("rate")?
                            .parse()
                            .map_err(|_| format!("rule {raw:?}: bad rate"))?;
                        if !(0.0..=1.0).contains(&r) {
                            return Err(format!("rule {raw:?}: rate must be in [0, 1]"));
                        }
                        rule.rate = Some(r);
                    }
                    "seed" => {
                        rule.seed = arg("seed")?
                            .parse()
                            .map_err(|_| format!("rule {raw:?}: bad seed"))?
                    }
                    "persist" => rule.persistent = true,
                    "" => {}
                    other => return Err(format!("rule {raw:?}: unknown selector {other:?}")),
                }
            }
            rules.push(rule);
        }
        if rules.is_empty() {
            return Err("empty fault spec".into());
        }
        Ok(FaultPlan { rules })
    }

    /// Read and parse `OPM_FAULT_SPEC`; `None` when unset/empty. An
    /// invalid spec is a hard error — silently ignoring it would make a
    /// fault-injection CI job pass without injecting anything.
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("OPM_FAULT_SPEC").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => panic!("invalid OPM_FAULT_SPEC {spec:?}: {e}"),
        }
    }

    /// The fault (if any) injected at sweep point `index` of `stage` on
    /// attempt `attempt` (0 = first try). Pure function of its arguments.
    pub fn point_fault(&self, stage: &str, index: usize, attempt: usize) -> Option<FaultKind> {
        self.rules
            .iter()
            .find(|r| r.fires_on_point(stage, index, attempt))
            .map(|r| r.kind)
    }

    /// The fault (if any) injected when loading corpus matrix `name` on
    /// attempt `attempt`.
    pub fn matrix_fault(&self, name: &str, attempt: usize) -> Option<FaultKind> {
        self.rules
            .iter()
            .find(|r| r.fires_on_matrix(name, attempt))
            .map(|r| r.kind)
    }

    /// Panic with an [`InjectedFault`] payload if a rule fires at this
    /// sweep point. Called by the engine inside its per-point
    /// `catch_unwind` so injected faults flow through the same recovery
    /// path as organic panics.
    pub fn fire_point(&self, stage: &str, index: usize, attempt: usize) {
        if let Some(kind) = self.point_fault(stage, index, attempt) {
            panic_any(InjectedFault {
                kind,
                site: format!("{stage}@point:{index}"),
            });
        }
    }
}

/// Panic payload of an injected fault; the engine downcasts panic payloads
/// to this type to classify a failure as transient (injected faults and
/// I/O faults are retried, organic panics are not — deterministic code
/// that panicked once will panic again).
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// What the rule injected.
    pub kind: FaultKind,
    /// Where it fired, e.g. `gemm_sweep/brd-edram@point:17`.
    pub site: String,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected {} fault at {}", self.kind.label(), self.site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_issue_examples() {
        let plan = FaultPlan::parse("panic@point:17,io@matrix:simple3").unwrap();
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].kind, FaultKind::Panic);
        assert_eq!(plan.rules[0].point, Some(17));
        assert_eq!(plan.rules[1].kind, FaultKind::Io);
        assert_eq!(plan.rules[1].matrix.as_deref(), Some("simple3"));
        assert_eq!(plan.point_fault("any_stage", 17, 0), Some(FaultKind::Panic));
        assert_eq!(plan.point_fault("any_stage", 16, 0), None);
        assert_eq!(plan.matrix_fault("simple3", 0), Some(FaultKind::Io));
        assert_eq!(plan.matrix_fault("simple4", 0), None);
    }

    #[test]
    fn transient_rules_fire_only_on_first_attempt() {
        let plan = FaultPlan::parse("panic@point:3").unwrap();
        assert!(plan.point_fault("s", 3, 0).is_some());
        assert!(plan.point_fault("s", 3, 1).is_none());
        let plan = FaultPlan::parse("panic@point:3:persist").unwrap();
        assert!(plan.point_fault("s", 3, 0).is_some());
        assert!(plan.point_fault("s", 3, 5).is_some());
    }

    #[test]
    fn stage_selector_filters_by_substring() {
        let plan = FaultPlan::parse("panic@stage:stream_curve:point:2").unwrap();
        assert!(plan.point_fault("stream_curve/knl-flat", 2, 0).is_some());
        assert!(plan.point_fault("gemm_sweep/knl-flat", 2, 0).is_none());
        assert!(plan.point_fault("stream_curve/knl-flat", 3, 0).is_none());
    }

    #[test]
    fn rate_rule_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::parse("panic@rate:0.25:seed:42").unwrap();
        let hits: Vec<usize> = (0..1000)
            .filter(|&i| plan.point_fault("stage", i, 0).is_some())
            .collect();
        // Deterministic: a second evaluation sees the identical set.
        let again: Vec<usize> = (0..1000)
            .filter(|&i| plan.point_fault("stage", i, 0).is_some())
            .collect();
        assert_eq!(hits, again);
        // Calibrated within loose bounds.
        assert!(
            hits.len() > 150 && hits.len() < 350,
            "0.25 rate hit {} of 1000",
            hits.len()
        );
        // Different seeds pick different points.
        let other = FaultPlan::parse("panic@rate:0.25:seed:43").unwrap();
        let other_hits: Vec<usize> = (0..1000)
            .filter(|&i| other.point_fault("stage", i, 0).is_some())
            .collect();
        assert_ne!(hits, other_hits);
    }

    #[test]
    fn matrix_rules_do_not_fire_on_points() {
        let plan = FaultPlan::parse("io@matrix:bad").unwrap();
        for i in 0..64 {
            assert!(plan.point_fault("stage", i, 0).is_none());
        }
        assert_eq!(plan.matrix_fault("bad", 0), Some(FaultKind::Io));
        assert_eq!(plan.matrix_fault("bad", 1), None, "transient by default");
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("frob@point:1").is_err());
        assert!(FaultPlan::parse("panic@point").is_err());
        assert!(FaultPlan::parse("panic@point:x").is_err());
        assert!(FaultPlan::parse("panic@rate:1.5").is_err());
        assert!(FaultPlan::parse("panic@wibble:3").is_err());
    }

    #[test]
    fn fire_point_panics_with_typed_payload() {
        let plan = FaultPlan::parse("io@point:5").unwrap();
        let err = std::panic::catch_unwind(|| plan.fire_point("s", 5, 0)).unwrap_err();
        let fault = err.downcast_ref::<InjectedFault>().expect("typed payload");
        assert_eq!(fault.kind, FaultKind::Io);
        assert!(fault.site.contains("point:5"));
        assert!(std::panic::catch_unwind(|| plan.fire_point("s", 4, 0)).is_ok());
    }
}
