//! Deterministic fault injection for the sweep engine and the corpus
//! loaders.
//!
//! Long mode-sweep campaigns must tolerate per-point failures (a single
//! bad run on real OPM hardware costs hours), and the only way to *prove*
//! the fault-tolerance machinery works is to exercise it on demand. This
//! module turns the `OPM_FAULT_SPEC` environment variable into a
//! [`FaultPlan`]: a set of rules that decide — as a pure function of the
//! stage label, point index, matrix name, and attempt number — whether a
//! fault fires at a given site. Because the decision never involves wall
//! clock, thread identity, or global mutable state, an injected run is
//! reproducible at any thread count: the same points fault, the same
//! points recover, and the output CSVs are byte-identical across
//! `OPM_THREADS` settings.
//!
//! # Spec grammar
//!
//! ```text
//! spec  := rule ("," rule)*
//! rule  := kind "@" seg (":" seg)*
//! kind  := "panic" | "io"                      in-process point faults
//!        | "kill" | "hang"                     process-level faults
//!        | "corrupt-ckpt" | "partial-write"    checkpoint-journal faults
//! seg   := "point" ":" <usize>     exact sweep-point index
//!        | "stage" ":" <substr>    only stages whose label contains <substr>
//!        | "matrix" ":" <name>     exact corpus matrix/file stem
//!        | "rate" ":" <f64>        seeded random rate over points
//!        | "seed" ":" <u64>        seed for the rate hash (default 0xA11CE)
//!        | "shard" ":" <usize>     only the worker whose OPM_SHARD matches
//!        | "persist"               fire on every attempt, not just the first
//! ```
//!
//! Examples:
//!
//! * `panic@point:17` — point 17 of every stage panics on its first
//!   attempt (a retry recovers it).
//! * `io@matrix:simple3` — loading the corpus matrix `simple3` fails with
//!   an injected I/O error on the first attempt.
//! * `panic@stage:stream_curve:rate:0.05:seed:7:persist` — 5 % of the
//!   points of every `stream_curve` stage panic on *every* attempt, so
//!   retries are exhausted and the points are quarantined.
//! * `kill@point:2:shard:1` — shard worker 1 exits with SIGKILL's status
//!   (137) when it reaches point 2 of its first stage, but only on the
//!   process's first life (`OPM_SHARD_ATTEMPT=0`); the supervisor's
//!   restart completes normally.
//! * `hang@point:1` — the evaluating thread wedges forever and the
//!   heartbeat thread stops beating, so the supervisor's watchdog fires.
//! * `partial-write@stage:fig23` — the `done` marker of any figure whose
//!   name contains `fig23` is torn mid-write (journal truncated), which
//!   resume must detect and recover from.
//!
//! Injected panics carry an [`InjectedFault`] payload, which the engine
//! downcasts to classify the failure as transient (retryable). A rule
//! without `persist` fires only on attempt 0, so the bounded-backoff
//! retry path recovers it; with `persist` it fires on every attempt and
//! the point ends in the error manifest with a placeholder result.
//!
//! # Process-level faults
//!
//! `kill`, `hang`, `corrupt-ckpt` and `partial-write` test the *process*
//! fault domain (shard supervision, watchdog, atomic checkpoints), so
//! their attempt counter is the process's restart generation — the
//! `OPM_SHARD_ATTEMPT` environment variable the supervisor increments on
//! every respawn — not the per-point retry attempt. A non-`persist`
//! process rule therefore fires once per shard lifetime: the restarted
//! worker runs clean, and the merged campaign output is byte-identical
//! to a fault-free run. The `shard:<i>` selector additionally restricts
//! any rule to the worker whose `OPM_SHARD` matches.

use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, Ordering};

/// Default seed for `rate` rules without an explicit `seed` segment.
pub const DEFAULT_RATE_SEED: u64 = 0xA11CE;

/// What kind of failure a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A panic in the middle of a sweep-point evaluation.
    Panic,
    /// An I/O error (corpus file read); in compute stages it is simulated
    /// by a panic whose payload is classified as an I/O fault.
    Io,
    /// The whole process exits with status 137 (what a `kill -9` leaves
    /// behind) mid-evaluation — the supervisor must respawn the shard.
    Kill,
    /// The evaluating thread wedges forever and the heartbeat stops —
    /// the supervisor's stale-heartbeat watchdog must kill and respawn
    /// the shard.
    Hang,
    /// A checkpoint journal write lands but a byte of the file is
    /// corrupted (bit rot / torn sector) — resume must reject the
    /// journal instead of trusting it.
    CorruptCkpt,
    /// A checkpoint journal write is torn: the file is truncated a few
    /// bytes short of the last record — resume must fall back to the
    /// last intact entry.
    PartialWrite,
}

impl FaultKind {
    /// Short label for manifests.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Io => "io",
            FaultKind::Kill => "kill",
            FaultKind::Hang => "hang",
            FaultKind::CorruptCkpt => "corrupt-ckpt",
            FaultKind::PartialWrite => "partial-write",
        }
    }

    /// Whether this kind takes down (or wedges) the whole process rather
    /// than one point evaluation.
    pub fn is_process(&self) -> bool {
        matches!(self, FaultKind::Kill | FaultKind::Hang)
    }

    /// Whether this kind damages checkpoint-journal writes.
    pub fn is_ckpt(&self) -> bool {
        matches!(self, FaultKind::CorruptCkpt | FaultKind::PartialWrite)
    }
}

/// Set once an injected `hang` fault has wedged a thread in this process;
/// the heartbeat thread polls it and stops beating, so the supervisor's
/// watchdog observes exactly what a real livelock looks like.
static HUNG: AtomicBool = AtomicBool::new(false);

/// Whether an injected `hang` fault has fired in this process.
pub fn is_hung() -> bool {
    HUNG.load(Ordering::Relaxed)
}

/// This process's shard index, when running as a shard worker
/// (`OPM_SHARD`, set by the supervisor).
pub fn shard_index() -> Option<usize> {
    std::env::var("OPM_SHARD").ok()?.trim().parse().ok()
}

/// This process's restart generation (`OPM_SHARD_ATTEMPT`, incremented by
/// the supervisor on every respawn; 0 for a first life or a standalone
/// run). Process-level rules use this as their attempt counter.
pub fn shard_attempt() -> usize {
    std::env::var("OPM_SHARD_ATTEMPT")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// One parsed injection rule. All selectors present must match for the
/// rule to fire (conjunction).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Failure kind to inject.
    pub kind: FaultKind,
    /// Exact sweep-point index selector.
    pub point: Option<usize>,
    /// Stage-label substring selector.
    pub stage: Option<String>,
    /// Exact matrix/file-stem selector.
    pub matrix: Option<String>,
    /// Seeded random rate over points (0.0–1.0).
    pub rate: Option<f64>,
    /// Seed for the rate hash.
    pub seed: u64,
    /// Only the shard worker whose `OPM_SHARD` matches.
    pub shard: Option<usize>,
    /// Fire on every attempt (exhausting retries) instead of only the
    /// first.
    pub persistent: bool,
}

impl FaultRule {
    /// The `shard:<i>` selector, evaluated against this process's
    /// `OPM_SHARD`. A rule with no shard selector matches every process.
    fn shard_matches(&self) -> bool {
        match self.shard {
            Some(s) => shard_index() == Some(s),
            None => true,
        }
    }

    fn fires_on_point(&self, stage: &str, index: usize, attempt: usize) -> bool {
        if self.matrix.is_some() {
            return false; // matrix rules only fire on corpus loads
        }
        if !self.persistent && attempt > 0 {
            return false;
        }
        if !self.shard_matches() {
            return false;
        }
        if let Some(s) = &self.stage {
            if !stage.contains(s.as_str()) {
                return false;
            }
        }
        if let Some(p) = self.point {
            if p != index {
                return false;
            }
        }
        if let Some(rate) = self.rate {
            if !rate_hit(self.seed, stage, index, rate) {
                return false;
            }
        }
        // Every present selector matched. A bare rule with no selector at
        // all matches everything — the intentional "chaos monkey" spec.
        true
    }

    fn fires_on_matrix(&self, name: &str, attempt: usize) -> bool {
        if !self.persistent && attempt > 0 {
            return false;
        }
        if !self.shard_matches() {
            return false;
        }
        match &self.matrix {
            Some(m) => m == name,
            None => false,
        }
    }

    /// Whether a checkpoint-fault rule fires for `figure`'s journal. The
    /// `stage` selector matches against the figure name; `point`/`rate`
    /// selectors do not apply to journal writes and disable the rule.
    fn fires_on_ckpt(&self, figure: &str, attempt: usize) -> bool {
        if self.matrix.is_some() || self.point.is_some() || self.rate.is_some() {
            return false;
        }
        if !self.persistent && attempt > 0 {
            return false;
        }
        if !self.shard_matches() {
            return false;
        }
        match &self.stage {
            Some(s) => figure.contains(s.as_str()),
            None => true,
        }
    }
}

/// Deterministic per-(seed, stage, point) coin flip: FNV-1a over the seed,
/// stage label, and point index, compared against `rate`. Thread count and
/// evaluation order never enter the hash, so the same points fault in
/// every configuration.
fn rate_hit(seed: u64, stage: &str, index: usize, rate: f64) -> bool {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in stage.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    for b in (index as u64).to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Map to [0, 1) using the top 53 bits (exact in an f64).
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    u < rate
}

/// A parsed `OPM_FAULT_SPEC`: every rule is consulted at every site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The rules, in spec order (first match wins).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (kind, rest) = raw
                .split_once('@')
                .ok_or_else(|| format!("rule {raw:?}: expected <kind>@<selectors>"))?;
            let kind = match kind.trim() {
                "panic" => FaultKind::Panic,
                "io" => FaultKind::Io,
                "kill" => FaultKind::Kill,
                "hang" => FaultKind::Hang,
                "corrupt-ckpt" => FaultKind::CorruptCkpt,
                "partial-write" => FaultKind::PartialWrite,
                other => return Err(format!("rule {raw:?}: unknown fault kind {other:?}")),
            };
            let mut rule = FaultRule {
                kind,
                point: None,
                stage: None,
                matrix: None,
                rate: None,
                seed: DEFAULT_RATE_SEED,
                shard: None,
                persistent: false,
            };
            let mut toks = rest.split(':');
            while let Some(tok) = toks.next() {
                let tok = tok.trim();
                let mut arg = |name: &str| {
                    toks.next()
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .ok_or_else(|| format!("rule {raw:?}: {name} needs a value"))
                };
                match tok {
                    "point" => {
                        rule.point = Some(
                            arg("point")?
                                .parse()
                                .map_err(|_| format!("rule {raw:?}: bad point index"))?,
                        )
                    }
                    "stage" => rule.stage = Some(arg("stage")?.to_string()),
                    "matrix" => rule.matrix = Some(arg("matrix")?.to_string()),
                    "rate" => {
                        let r: f64 = arg("rate")?
                            .parse()
                            .map_err(|_| format!("rule {raw:?}: bad rate"))?;
                        if !(0.0..=1.0).contains(&r) {
                            return Err(format!("rule {raw:?}: rate must be in [0, 1]"));
                        }
                        rule.rate = Some(r);
                    }
                    "seed" => {
                        rule.seed = arg("seed")?
                            .parse()
                            .map_err(|_| format!("rule {raw:?}: bad seed"))?
                    }
                    "shard" => {
                        rule.shard = Some(
                            arg("shard")?
                                .parse()
                                .map_err(|_| format!("rule {raw:?}: bad shard index"))?,
                        )
                    }
                    "persist" => rule.persistent = true,
                    "" => {}
                    other => return Err(format!("rule {raw:?}: unknown selector {other:?}")),
                }
            }
            rules.push(rule);
        }
        if rules.is_empty() {
            return Err("empty fault spec".into());
        }
        Ok(FaultPlan { rules })
    }

    /// Read and parse `OPM_FAULT_SPEC` (through the typed
    /// [`opm_core::config::Config`]); `None` when unset/empty. An
    /// invalid spec is a hard error — silently ignoring it would make a
    /// fault-injection CI job pass without injecting anything.
    pub fn from_env() -> Option<FaultPlan> {
        FaultPlan::from_config(&opm_core::config::Config::from_env_or_die())
    }

    /// The fault plan named by a parsed configuration; `None` when no
    /// spec is set. Grammar errors panic with the offending spec, as in
    /// [`FaultPlan::from_env`].
    pub fn from_config(cfg: &opm_core::config::Config) -> Option<FaultPlan> {
        let spec = cfg.fault_spec.as_deref()?;
        match FaultPlan::parse(spec) {
            Ok(plan) => Some(plan),
            Err(e) => panic!("invalid OPM_FAULT_SPEC {spec:?}: {e}"),
        }
    }

    /// The in-process fault (if any) injected at sweep point `index` of
    /// `stage` on attempt `attempt` (0 = first try). Pure function of its
    /// arguments; process-level and checkpoint kinds never fire here.
    pub fn point_fault(&self, stage: &str, index: usize, attempt: usize) -> Option<FaultKind> {
        self.rules
            .iter()
            .filter(|r| !r.kind.is_process() && !r.kind.is_ckpt())
            .find(|r| r.fires_on_point(stage, index, attempt))
            .map(|r| r.kind)
    }

    /// The fault (if any) injected when loading corpus matrix `name` on
    /// attempt `attempt`. Only in-process kinds (`panic`/`io`) apply.
    pub fn matrix_fault(&self, name: &str, attempt: usize) -> Option<FaultKind> {
        self.rules
            .iter()
            .filter(|r| !r.kind.is_process() && !r.kind.is_ckpt())
            .find(|r| r.fires_on_matrix(name, attempt))
            .map(|r| r.kind)
    }

    /// The process-level fault (`kill`/`hang`) a rule injects at this
    /// sweep point, with the *process restart generation*
    /// ([`shard_attempt`]) as the attempt counter — a non-`persist` rule
    /// fires once per shard lifetime, so the supervisor's respawn runs
    /// clean.
    pub fn process_fault(&self, stage: &str, index: usize) -> Option<FaultKind> {
        if !self.rules.iter().any(|r| r.kind.is_process()) {
            return None;
        }
        let attempt = shard_attempt();
        self.rules
            .iter()
            .filter(|r| r.kind.is_process())
            .find(|r| r.fires_on_point(stage, index, attempt))
            .map(|r| r.kind)
    }

    /// The checkpoint-journal fault (`corrupt-ckpt`/`partial-write`) a
    /// rule injects on `figure`'s journal, keyed by the process restart
    /// generation like [`process_fault`].
    pub fn ckpt_fault(&self, figure: &str) -> Option<FaultKind> {
        if !self.rules.iter().any(|r| r.kind.is_ckpt()) {
            return None;
        }
        let attempt = shard_attempt();
        self.rules
            .iter()
            .filter(|r| r.kind.is_ckpt())
            .find(|r| r.fires_on_ckpt(figure, attempt))
            .map(|r| r.kind)
    }

    /// Fire whatever rule matches this sweep point. Process-level faults
    /// act first: `kill` exits the process with status 137 (SIGKILL's
    /// wait status), `hang` wedges the calling thread forever and raises
    /// the [`is_hung`] flag so the heartbeat stops. In-process faults
    /// panic with an [`InjectedFault`] payload; the engine's per-point
    /// `catch_unwind` routes them through the same recovery path as
    /// organic panics.
    pub fn fire_point(&self, stage: &str, index: usize, attempt: usize) {
        match self.process_fault(stage, index) {
            Some(FaultKind::Kill) => {
                eprintln!("fault injection: kill at {stage}@point:{index} (exit 137)");
                // The flight recorder's ring already holds this point's
                // span begin; dump the post-mortem before dying.
                opm_core::telemetry::flight_dump("kill");
                std::process::exit(137);
            }
            Some(FaultKind::Hang) => {
                eprintln!("fault injection: hang at {stage}@point:{index}");
                opm_core::telemetry::flight_dump("hang");
                HUNG.store(true, Ordering::SeqCst);
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            _ => {}
        }
        if let Some(kind) = self.point_fault(stage, index, attempt) {
            panic_any(InjectedFault {
                kind,
                site: format!("{stage}@point:{index}"),
            });
        }
    }
}

/// Panic payload of an injected fault; the engine downcasts panic payloads
/// to this type to classify a failure as transient (injected faults and
/// I/O faults are retried, organic panics are not — deterministic code
/// that panicked once will panic again).
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// What the rule injected.
    pub kind: FaultKind,
    /// Where it fired, e.g. `gemm_sweep/brd-edram@point:17`.
    pub site: String,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected {} fault at {}", self.kind.label(), self.site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_issue_examples() {
        let plan = FaultPlan::parse("panic@point:17,io@matrix:simple3").unwrap();
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].kind, FaultKind::Panic);
        assert_eq!(plan.rules[0].point, Some(17));
        assert_eq!(plan.rules[1].kind, FaultKind::Io);
        assert_eq!(plan.rules[1].matrix.as_deref(), Some("simple3"));
        assert_eq!(plan.point_fault("any_stage", 17, 0), Some(FaultKind::Panic));
        assert_eq!(plan.point_fault("any_stage", 16, 0), None);
        assert_eq!(plan.matrix_fault("simple3", 0), Some(FaultKind::Io));
        assert_eq!(plan.matrix_fault("simple4", 0), None);
    }

    #[test]
    fn transient_rules_fire_only_on_first_attempt() {
        let plan = FaultPlan::parse("panic@point:3").unwrap();
        assert!(plan.point_fault("s", 3, 0).is_some());
        assert!(plan.point_fault("s", 3, 1).is_none());
        let plan = FaultPlan::parse("panic@point:3:persist").unwrap();
        assert!(plan.point_fault("s", 3, 0).is_some());
        assert!(plan.point_fault("s", 3, 5).is_some());
    }

    #[test]
    fn stage_selector_filters_by_substring() {
        let plan = FaultPlan::parse("panic@stage:stream_curve:point:2").unwrap();
        assert!(plan.point_fault("stream_curve/knl-flat", 2, 0).is_some());
        assert!(plan.point_fault("gemm_sweep/knl-flat", 2, 0).is_none());
        assert!(plan.point_fault("stream_curve/knl-flat", 3, 0).is_none());
    }

    #[test]
    fn rate_rule_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::parse("panic@rate:0.25:seed:42").unwrap();
        let hits: Vec<usize> = (0..1000)
            .filter(|&i| plan.point_fault("stage", i, 0).is_some())
            .collect();
        // Deterministic: a second evaluation sees the identical set.
        let again: Vec<usize> = (0..1000)
            .filter(|&i| plan.point_fault("stage", i, 0).is_some())
            .collect();
        assert_eq!(hits, again);
        // Calibrated within loose bounds.
        assert!(
            hits.len() > 150 && hits.len() < 350,
            "0.25 rate hit {} of 1000",
            hits.len()
        );
        // Different seeds pick different points.
        let other = FaultPlan::parse("panic@rate:0.25:seed:43").unwrap();
        let other_hits: Vec<usize> = (0..1000)
            .filter(|&i| other.point_fault("stage", i, 0).is_some())
            .collect();
        assert_ne!(hits, other_hits);
    }

    #[test]
    fn matrix_rules_do_not_fire_on_points() {
        let plan = FaultPlan::parse("io@matrix:bad").unwrap();
        for i in 0..64 {
            assert!(plan.point_fault("stage", i, 0).is_none());
        }
        assert_eq!(plan.matrix_fault("bad", 0), Some(FaultKind::Io));
        assert_eq!(plan.matrix_fault("bad", 1), None, "transient by default");
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("frob@point:1").is_err());
        assert!(FaultPlan::parse("panic@point").is_err());
        assert!(FaultPlan::parse("panic@point:x").is_err());
        assert!(FaultPlan::parse("panic@rate:1.5").is_err());
        assert!(FaultPlan::parse("panic@wibble:3").is_err());
    }

    #[test]
    fn process_kinds_parse_and_stay_out_of_point_faults() {
        let plan =
            FaultPlan::parse("kill@point:2:shard:1,hang@point:1,corrupt-ckpt@stage:fig23").unwrap();
        assert_eq!(plan.rules[0].kind, FaultKind::Kill);
        assert_eq!(plan.rules[0].shard, Some(1));
        assert_eq!(plan.rules[1].kind, FaultKind::Hang);
        assert_eq!(plan.rules[2].kind, FaultKind::CorruptCkpt);
        // Process/ckpt kinds never leak into the engine's per-point path
        // (they would be misclassified as retryable panics).
        for i in 0..8 {
            assert_eq!(plan.point_fault("any", i, 0), None);
        }
        assert!(FaultKind::Kill.is_process());
        assert!(FaultKind::Hang.is_process());
        assert!(FaultKind::PartialWrite.is_ckpt());
        assert!(!FaultKind::Panic.is_process());
        assert!(FaultPlan::parse("kill@shard:x").is_err());
    }

    /// Serializes the tests that mutate `OPM_SHARD*`.
    static SHARD_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn process_fault_uses_shard_attempt_and_shard_selector() {
        let _lock = SHARD_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = FaultPlan::parse("kill@point:2,hang@point:1:shard:3:persist").unwrap();
        std::env::remove_var("OPM_SHARD");
        std::env::remove_var("OPM_SHARD_ATTEMPT");
        // No shard env: unselected shard rule is silent, bare rule fires.
        assert_eq!(plan.process_fault("s", 2), Some(FaultKind::Kill));
        assert_eq!(plan.process_fault("s", 1), None);
        // Restart generation 1: non-persist kill is spent.
        std::env::set_var("OPM_SHARD_ATTEMPT", "1");
        assert_eq!(plan.process_fault("s", 2), None);
        // Matching shard: persistent hang still fires on any attempt.
        std::env::set_var("OPM_SHARD", "3");
        assert_eq!(plan.process_fault("s", 1), Some(FaultKind::Hang));
        std::env::set_var("OPM_SHARD", "0");
        assert_eq!(plan.process_fault("s", 1), None);
        std::env::remove_var("OPM_SHARD");
        std::env::remove_var("OPM_SHARD_ATTEMPT");
    }

    #[test]
    fn ckpt_fault_selects_by_figure_name() {
        let _lock = SHARD_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var("OPM_SHARD");
        std::env::remove_var("OPM_SHARD_ATTEMPT");
        let plan = FaultPlan::parse("partial-write@stage:fig23,corrupt-ckpt@stage:fig12").unwrap();
        assert_eq!(
            plan.ckpt_fault("fig23_stream_knl"),
            Some(FaultKind::PartialWrite)
        );
        assert_eq!(
            plan.ckpt_fault("fig12_stream_broadwell"),
            Some(FaultKind::CorruptCkpt)
        );
        assert_eq!(plan.ckpt_fault("fig06_stepping_model"), None);
        // Point faults stay silent for ckpt kinds and vice versa.
        assert_eq!(plan.point_fault("fig23_stream_knl", 0, 0), None);
        let point_plan = FaultPlan::parse("panic@point:1").unwrap();
        assert_eq!(point_plan.ckpt_fault("fig23_stream_knl"), None);
    }

    #[test]
    fn fire_point_panics_with_typed_payload() {
        let plan = FaultPlan::parse("io@point:5").unwrap();
        let err = std::panic::catch_unwind(|| plan.fire_point("s", 5, 0)).unwrap_err();
        let fault = err.downcast_ref::<InjectedFault>().expect("typed payload");
        assert_eq!(fault.kind, FaultKind::Io);
        assert!(fault.site.contains("point:5"));
        assert!(std::panic::catch_unwind(|| plan.fire_point("s", 4, 0)).is_ok());
    }
}
