//! # opm-kernels
//!
//! The kernel registry and experiment drivers of the OPM reproduction:
//! paper Table 2 as code ([`registry`]), the Appendix A parameter sweeps
//! evaluated through the performance model ([`sweeps`]), and the Table 4/5
//! summary machinery ([`summary`]).

#![warn(missing_docs)]

pub mod registry;
pub mod summary;
pub mod sweeps;
pub mod traces;

pub use registry::{IntensityClass, KernelId};
pub use summary::{cross_kernel, summarize_pair, CrossKernelSummary, SummaryRow};
pub use sweeps::{
    cholesky_sweep, fft_curve, gemm_sweep, paper_dense_sizes, paper_dense_tiles,
    paper_fft_sizes, paper_stencil_grids, paper_stream_footprints, sparse_sweep, stencil_curve,
    stream_curve, CurvePoint, HeatPoint, SparseKernelId, SparsePoint,
};
