//! # opm-kernels
//!
//! The kernel registry and experiment drivers of the OPM reproduction:
//! paper Table 2 as code ([`registry`]), the Appendix A parameter sweeps
//! evaluated through the performance model ([`sweeps`]), the shared
//! parallel/memoizing sweep-execution engine they run on ([`engine`]), the
//! deterministic fault-injection harness that exercises its fault
//! tolerance ([`faultinject`]), and the Table 4/5 summary machinery
//! ([`summary`]).

#![warn(missing_docs)]

pub mod engine;
pub mod faultinject;
pub mod registry;
pub mod summary;
pub mod sweeps;
pub mod traces;

pub use engine::{
    lock_recover, CacheStats, Engine, EngineConfig, PointFailure, StageJournal, StageRecord,
};
pub use faultinject::{FaultKind, FaultPlan, FaultRule, InjectedFault};
pub use registry::{IntensityClass, KernelId};
pub use summary::{cross_kernel, summarize_pair, CrossKernelSummary, SummaryRow};
pub use sweeps::{
    cholesky_sweep, cholesky_sweep_on, fft_curve, fft_curve_on, gemm_sweep, gemm_sweep_on,
    paper_dense_sizes, paper_dense_tiles, paper_fft_sizes, paper_stencil_grids,
    paper_stream_footprints, sparse_sweep, sparse_sweep_on, stencil_curve, stencil_curve_on,
    stream_curve, stream_curve_on, CurvePoint, HeatPoint, SparseKernelId, SparsePoint,
};
