//! Parameter-sweep drivers: the experiment grids of the paper's Appendix A
//! (matrix orders × tile sizes for the dense kernels, the 968-matrix corpus
//! for the sparse kernels, and footprint sweeps for Stream/Stencil/FFT),
//! evaluated through the performance model for any OPM configuration.
//!
//! Every sweep executes on the shared [`Engine`] (see [`crate::engine`]):
//! grid points run on its deterministic parallel work queue, access
//! profiles are memoized across configurations, and each sweep is recorded
//! as a timed stage. The `*_on` variants take an explicit engine; the
//! original names run on [`Engine::global`].
//!
//! Sweeps run with **panic isolation**
//! ([`Engine::par_map_isolated`]): a point that still fails after the
//! transient-retry budget is quarantined — its row keeps the grid
//! coordinates but carries NaN for the modeled values — and the failure
//! is recorded on the engine for the `run_errors.csv` manifest, instead
//! of aborting the whole sweep.

use crate::engine::Engine;
use crate::registry::KernelId;
use opm_core::perf::PerfModel;
use opm_core::platform::{Machine, OpmConfig, PlatformSpec};
use opm_core::profile::ProfileKey;
use opm_core::units::{GIB, MIB};
use opm_sparse::gen::MatrixSpec;

/// One point of a dense (size × tile) heat map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatPoint {
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub tile: usize,
    /// Modeled throughput, GFlop/s.
    pub gflops: f64,
}

/// One point of a footprint curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Allocation footprint in bytes.
    pub footprint: f64,
    /// Modeled throughput, GFlop/s.
    pub gflops: f64,
}

/// One corpus matrix result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsePoint {
    /// The matrix description.
    pub spec: MatrixSpec,
    /// Allocation footprint in bytes.
    pub footprint: f64,
    /// Modeled throughput, GFlop/s.
    pub gflops: f64,
}

/// Which sparse kernel a corpus sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseKernelId {
    /// SpMV.
    Spmv,
    /// SpTRANS.
    Sptrans,
    /// SpTRSV.
    Sptrsv,
}

impl SparseKernelId {
    /// Corresponding registry id.
    pub fn kernel(&self) -> KernelId {
        match self {
            SparseKernelId::Spmv => KernelId::Spmv,
            SparseKernelId::Sptrans => KernelId::Sptrans,
            SparseKernelId::Sptrsv => KernelId::Sptrsv,
        }
    }
}

fn cores(machine: Machine) -> usize {
    PlatformSpec::for_machine(machine).cores
}

/// Paper Appendix A.2.1 matrix orders: `{256 .. 16128 .. 512}` on Broadwell,
/// `{256 .. 32000 .. 1024}` on KNL.
pub fn paper_dense_sizes(machine: Machine) -> Vec<usize> {
    match machine {
        Machine::Broadwell => (256..=16128).step_by(512).collect(),
        Machine::Knl => (256..=32000).step_by(1024).collect(),
    }
}

/// Paper Appendix A.2.1 tile sizes: `{128 .. 4096 .. 128}` on both.
pub fn paper_dense_tiles() -> Vec<usize> {
    (128..=4096).step_by(128).collect()
}

fn dense_sweep_on(
    engine: &Engine,
    config: OpmConfig,
    kernel: KernelId,
    sizes: &[usize],
    tiles: &[usize],
) -> Vec<HeatPoint> {
    let model = PerfModel::for_config(config);
    let machine = config.machine();
    let threads = kernel.threads(machine);
    let c = cores(machine);
    let grid: Vec<(usize, usize)> = sizes
        .iter()
        .flat_map(|&n| tiles.iter().map(move |&tile| (n, tile)))
        .collect();
    let label = format!("{}_sweep/{}", kernel.name(), config.label());
    let plan = model.plan();
    engine.run_stage(&label, |eng| {
        let eval = |&(n, tile): &(usize, usize)| {
            let pp = match kernel {
                KernelId::Gemm => eng.profile(
                    ProfileKey::Gemm {
                        n,
                        tile,
                        threads,
                        cores: c,
                    },
                    || opm_dense::gemm_profile(n, tile, threads, c),
                ),
                _ => eng.profile(
                    ProfileKey::Cholesky {
                        n,
                        tile,
                        threads,
                        cores: c,
                    },
                    || opm_dense::cholesky_profile(n, tile, threads, c),
                ),
            };
            HeatPoint {
                n,
                tile,
                gflops: eng.observe_point(&plan, pp.plan(), None),
            }
        };
        // A quarantined point keeps its grid coordinates; only the
        // modeled throughput becomes NaN.
        let placeholder = |&(n, tile): &(usize, usize), _i: usize| HeatPoint {
            n,
            tile,
            gflops: f64::NAN,
        };
        let pts = eng.par_map_isolated(&label, &grid, eval, placeholder);
        let n = pts.len();
        (pts, n)
    })
}

/// GEMM heat map under one configuration, on an explicit engine.
pub fn gemm_sweep_on(
    engine: &Engine,
    config: OpmConfig,
    sizes: &[usize],
    tiles: &[usize],
) -> Vec<HeatPoint> {
    dense_sweep_on(engine, config, KernelId::Gemm, sizes, tiles)
}

/// GEMM heat map under one configuration.
pub fn gemm_sweep(config: OpmConfig, sizes: &[usize], tiles: &[usize]) -> Vec<HeatPoint> {
    gemm_sweep_on(Engine::global(), config, sizes, tiles)
}

/// Cholesky heat map under one configuration, on an explicit engine.
pub fn cholesky_sweep_on(
    engine: &Engine,
    config: OpmConfig,
    sizes: &[usize],
    tiles: &[usize],
) -> Vec<HeatPoint> {
    dense_sweep_on(engine, config, KernelId::Cholesky, sizes, tiles)
}

/// Cholesky heat map under one configuration.
pub fn cholesky_sweep(config: OpmConfig, sizes: &[usize], tiles: &[usize]) -> Vec<HeatPoint> {
    cholesky_sweep_on(Engine::global(), config, sizes, tiles)
}

/// Corpus sweep for one sparse kernel under one configuration, on an
/// explicit engine. Uses the generator's analytic structure estimates
/// (building all 968 matrices would take hours; estimates carry
/// rows/nnz/span/levels, which is what the profiles need).
pub fn sparse_sweep_on(
    engine: &Engine,
    config: OpmConfig,
    kernel: SparseKernelId,
    specs: &[MatrixSpec],
) -> Vec<SparsePoint> {
    let model = PerfModel::for_config(config);
    let machine = config.machine();
    let threads = kernel.kernel().threads(machine);
    let label = format!("{}_sweep/{}", kernel.kernel().name(), config.label());
    let plan = model.plan();
    engine.run_stage(&label, |eng| {
        let eval = |spec: &MatrixSpec| {
            let est = spec.estimate();
            let pp = match kernel {
                SparseKernelId::Spmv => eng.profile(
                    ProfileKey::spmv(est.rows, est.nnz, est.avg_col_span, threads),
                    || opm_sparse::spmv_profile(est.rows, est.nnz, est.avg_col_span, threads),
                ),
                SparseKernelId::Sptrans => eng.profile(
                    ProfileKey::Sptrans {
                        rows: est.rows,
                        nnz: est.nnz,
                        threads,
                    },
                    || opm_sparse::sptrans_profile(est.rows, est.nnz, threads),
                ),
                SparseKernelId::Sptrsv => eng.profile(
                    ProfileKey::sptrsv(est.rows, est.nnz, est.avg_col_span, est.levels, threads),
                    || {
                        opm_sparse::sptrsv_profile(
                            est.rows,
                            est.nnz,
                            est.avg_col_span,
                            est.levels,
                            threads,
                        )
                    },
                ),
            };
            SparsePoint {
                spec: *spec,
                footprint: pp.footprint,
                gflops: eng.observe_point(&plan, pp.plan(), None),
            }
        };
        let placeholder = |spec: &MatrixSpec, _i: usize| SparsePoint {
            spec: *spec,
            footprint: f64::NAN,
            gflops: f64::NAN,
        };
        let pts = eng.par_map_isolated(&label, specs, eval, placeholder);
        let n = pts.len();
        (pts, n)
    })
}

/// Corpus sweep for one sparse kernel under one configuration.
pub fn sparse_sweep(
    config: OpmConfig,
    kernel: SparseKernelId,
    specs: &[MatrixSpec],
) -> Vec<SparsePoint> {
    sparse_sweep_on(Engine::global(), config, kernel, specs)
}

/// Stream TRIAD footprint curve (paper Figs. 12 / 23), on an explicit
/// engine.
pub fn stream_curve_on(engine: &Engine, config: OpmConfig, footprints: &[f64]) -> Vec<CurvePoint> {
    let model = PerfModel::for_config(config);
    let threads = KernelId::Stream.threads(config.machine());
    let label = format!("stream_curve/{}", config.label());
    let plan = model.plan();
    engine.run_stage(&label, |eng| {
        let eval = |&fp: &f64| {
            let n = (fp / 24.0).max(64.0) as usize;
            let pp = eng.profile(
                ProfileKey::Stream {
                    n,
                    unroll: 4,
                    threads,
                },
                || opm_stencil::stream_profile(n, 4, threads),
            );
            CurvePoint {
                footprint: pp.footprint,
                gflops: eng.observe_point(&plan, pp.plan(), Some(&format!("{:.0}", pp.footprint))),
            }
        };
        // The footprint is a pure function of the requested size (three
        // arrays of doubles), so a quarantined point keeps its x-axis
        // coordinate and only the throughput becomes NaN.
        let placeholder = |&fp: &f64, _i: usize| CurvePoint {
            footprint: 24.0 * ((fp / 24.0).max(64.0) as usize) as f64,
            gflops: f64::NAN,
        };
        let pts = eng.par_map_isolated(&label, footprints, eval, placeholder);
        let n = pts.len();
        (pts, n)
    })
}

/// Stream TRIAD footprint curve (paper Figs. 12 / 23).
pub fn stream_curve(config: OpmConfig, footprints: &[f64]) -> Vec<CurvePoint> {
    stream_curve_on(Engine::global(), config, footprints)
}

/// Stencil grid-size curve (paper Figs. 13 / 24), on an explicit engine.
/// The block is the paper's 64×64×96.
pub fn stencil_curve_on(
    engine: &Engine,
    config: OpmConfig,
    grids: &[(usize, usize, usize)],
) -> Vec<CurvePoint> {
    let model = PerfModel::for_config(config);
    let machine = config.machine();
    let threads = KernelId::Stencil.threads(machine);
    let c = cores(machine);
    let label = format!("stencil_curve/{}", config.label());
    let plan = model.plan();
    engine.run_stage(&label, |eng| {
        let eval = |&(nx, ny, nz): &(usize, usize, usize)| {
            let pp = eng.profile(
                ProfileKey::Stencil {
                    grid: (nx, ny, nz),
                    block: (64, 64, 96),
                    threads,
                    cores: c,
                },
                || opm_stencil::stencil_profile(nx, ny, nz, (64, 64, 96), threads, c),
            );
            CurvePoint {
                footprint: pp.footprint,
                gflops: eng.observe_point(&plan, pp.plan(), Some(&format!("{nx}x{ny}x{nz}"))),
            }
        };
        // Three grids of doubles: the footprint is derivable from the
        // grid alone, so only the throughput becomes NaN.
        let placeholder = |&(nx, ny, nz): &(usize, usize, usize), _i: usize| CurvePoint {
            footprint: 24.0 * (nx * ny * nz) as f64,
            gflops: f64::NAN,
        };
        let pts = eng.par_map_isolated(&label, grids, eval, placeholder);
        let n = pts.len();
        (pts, n)
    })
}

/// Stencil grid-size curve (paper Figs. 13 / 24). The block is the paper's
/// 64×64×96.
pub fn stencil_curve(config: OpmConfig, grids: &[(usize, usize, usize)]) -> Vec<CurvePoint> {
    stencil_curve_on(Engine::global(), config, grids)
}

/// 3D-FFT size curve (paper Figs. 14 / 25), on an explicit engine.
pub fn fft_curve_on(engine: &Engine, config: OpmConfig, sizes: &[usize]) -> Vec<CurvePoint> {
    let model = PerfModel::for_config(config);
    let machine = config.machine();
    let threads = KernelId::Fft.threads(machine);
    let c = cores(machine);
    let label = format!("fft_curve/{}", config.label());
    let plan = model.plan();
    engine.run_stage(&label, |eng| {
        let eval = |&n: &usize| {
            let pp = eng.profile(
                ProfileKey::Fft3d {
                    n,
                    threads,
                    cores: c,
                },
                || opm_fft::fft3d_profile(n, threads, c),
            );
            CurvePoint {
                footprint: pp.footprint,
                gflops: eng.observe_point(&plan, pp.plan(), Some(&n.to_string())),
            }
        };
        let placeholder = |_: &usize, _i: usize| CurvePoint {
            footprint: f64::NAN,
            gflops: f64::NAN,
        };
        let pts = eng.par_map_isolated(&label, sizes, eval, placeholder);
        let n = pts.len();
        (pts, n)
    })
}

/// 3D-FFT size curve (paper Figs. 14 / 25).
pub fn fft_curve(config: OpmConfig, sizes: &[usize]) -> Vec<CurvePoint> {
    fft_curve_on(Engine::global(), config, sizes)
}

/// Paper stream footprint range (log-spaced samples).
pub fn paper_stream_footprints(machine: Machine, samples: usize) -> Vec<f64> {
    let (lo, hi) = match machine {
        Machine::Broadwell => (64.0 * 1024.0, 8.0 * GIB),
        Machine::Knl => (1.0 * MIB, 64.0 * GIB),
    };
    opm_core::stats::logspace(lo, hi, samples)
}

/// Paper stencil grid sweep: doubling grids from 32×16×16 (BRD) /
/// 128×64×64 (KNL), capped below the DDR capacity.
pub fn paper_stencil_grids(machine: Machine) -> Vec<(usize, usize, usize)> {
    let (mut g, cap_bytes) = match machine {
        Machine::Broadwell => ((32usize, 16usize, 16usize), 12.0 * GIB),
        // The paper's KNL sweep effectively starts past the 32 MB L2
        // (§4.2.3: no L2 peak observable).
        Machine::Knl => ((256, 128, 128), 80.0 * GIB),
    };
    let mut out = Vec::new();
    let mut axis = 0;
    loop {
        let fp = 3.0 * (g.0 * g.1 * g.2) as f64 * 8.0;
        if fp > cap_bytes {
            break;
        }
        out.push(g);
        // Double one axis at a time (the paper's "2x size in each step").
        match axis % 3 {
            0 => g.2 *= 2,
            1 => g.1 *= 2,
            _ => g.0 *= 2,
        }
        axis += 1;
    }
    out
}

/// Paper FFT sizes: `{96 .. 592 .. 16}` on Broadwell, `{96 .. 1088 .. 32}`
/// on KNL.
pub fn paper_fft_sizes(machine: Machine) -> Vec<usize> {
    match machine {
        Machine::Broadwell => (96..=592).step_by(16).collect(),
        Machine::Knl => (96..=1088).step_by(32).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_core::platform::{EdramMode, McdramMode};
    use opm_sparse::gen::corpus;

    #[test]
    fn gemm_sweep_peak_is_near_paper_value() {
        let pts = gemm_sweep(
            OpmConfig::Broadwell(EdramMode::Off),
            &paper_dense_sizes(Machine::Broadwell),
            &paper_dense_tiles(),
        );
        let peak = pts.iter().map(|p| p.gflops).fold(0.0, f64::max);
        // Paper Table 4: 204.5 GFlop/s without eDRAM (peak 236.8).
        assert!(peak > 150.0 && peak < 236.8, "peak {peak}");
    }

    #[test]
    fn gemm_edram_expands_near_peak_region() {
        // Paper tile grid (step 128) so well-chosen L3-resident tiles are
        // represented; a few representative sizes keep the test fast.
        let sizes: Vec<usize> = vec![2304, 8448, 14592];
        let tiles: Vec<usize> = paper_dense_tiles();
        let off = gemm_sweep(OpmConfig::Broadwell(EdramMode::Off), &sizes, &tiles);
        let on = gemm_sweep(OpmConfig::Broadwell(EdramMode::On), &sizes, &tiles);
        let peak_off = off.iter().map(|p| p.gflops).fold(0.0, f64::max);
        let peak_on = on.iter().map(|p| p.gflops).fold(0.0, f64::max);
        // (1) Peak barely moves.
        assert!((peak_on - peak_off).abs() / peak_off < 0.05);
        // (2) More configurations reach 70 % of peak with eDRAM.
        let near =
            |pts: &[HeatPoint], peak: f64| pts.iter().filter(|p| p.gflops > 0.7 * peak).count();
        assert!(
            near(&on, peak_off) > near(&off, peak_off),
            "near-peak region did not expand: {} vs {}",
            near(&on, peak_off),
            near(&off, peak_off)
        );
    }

    #[test]
    fn knl_dense_peaks_above_broadwell() {
        let sizes = vec![8192, 16384];
        let tiles = vec![512, 1024];
        let knl = gemm_sweep(OpmConfig::Knl(McdramMode::Cache), &sizes, &tiles);
        let peak = knl.iter().map(|p| p.gflops).fold(0.0, f64::max);
        // Paper Table 5: ~1483 GFlop/s in cache mode.
        assert!(peak > 700.0 && peak < 3072.0, "peak {peak}");
    }

    #[test]
    fn sparse_sweep_covers_corpus() {
        let specs = corpus(24);
        let pts = sparse_sweep(
            OpmConfig::Broadwell(EdramMode::On),
            SparseKernelId::Spmv,
            &specs,
        );
        assert_eq!(pts.len(), 24);
        for p in &pts {
            assert!(p.gflops > 0.0 && p.gflops < 50.0, "gflops {}", p.gflops);
        }
    }

    #[test]
    fn sptrsv_is_slower_than_spmv() {
        // Paper §3.1.2: SpTRSV "is often much slower than SpMV".
        let specs = corpus(12);
        let cfg = OpmConfig::Knl(McdramMode::Flat);
        let spmv = sparse_sweep(cfg, SparseKernelId::Spmv, &specs);
        let sptrsv = sparse_sweep(cfg, SparseKernelId::Sptrsv, &specs);
        let avg = |v: &[SparsePoint]| v.iter().map(|p| p.gflops).sum::<f64>() / v.len() as f64;
        assert!(avg(&sptrsv) < avg(&spmv));
    }

    #[test]
    fn stream_curve_shows_mcdram_advantage() {
        let fps = paper_stream_footprints(Machine::Knl, 24);
        let flat = stream_curve(OpmConfig::Knl(McdramMode::Flat), &fps);
        let ddr = stream_curve(OpmConfig::Knl(McdramMode::Off), &fps);
        // At ~2 GiB the flat mode should win by roughly the bandwidth ratio.
        let pick = |v: &[CurvePoint]| {
            v.iter()
                .min_by(|a, b| {
                    (a.footprint - 2.0 * GIB)
                        .abs()
                        .partial_cmp(&(b.footprint - 2.0 * GIB).abs())
                        .unwrap()
                })
                .unwrap()
                .gflops
        };
        let ratio = pick(&flat) / pick(&ddr);
        assert!(ratio > 2.5 && ratio < 6.5, "ratio {ratio}");
    }

    #[test]
    fn stencil_grids_stay_under_memory_cap() {
        for machine in [Machine::Broadwell, Machine::Knl] {
            let grids = paper_stencil_grids(machine);
            assert!(grids.len() > 8, "need a real sweep");
            for (nx, ny, nz) in grids {
                assert!(3.0 * (nx * ny * nz) as f64 * 8.0 <= 80.0 * GIB);
            }
        }
    }

    #[test]
    fn fft_sizes_match_appendix() {
        let brd = paper_fft_sizes(Machine::Broadwell);
        assert_eq!(brd.first(), Some(&96));
        assert_eq!(brd.last(), Some(&592));
        let knl = paper_fft_sizes(Machine::Knl);
        assert_eq!(knl.last(), Some(&1088));
    }

    #[test]
    fn fft_curve_mcdram_flat_drops_past_capacity() {
        // Paper Fig. 25: flat mode drops once 16·n³ exceeds 16 GiB
        // (n ≈ 1024 for complex doubles), cache/hybrid hold on.
        let sizes = vec![512, 896, 1088];
        let flat = fft_curve(OpmConfig::Knl(McdramMode::Flat), &sizes);
        let cache = fft_curve(OpmConfig::Knl(McdramMode::Cache), &sizes);
        assert!(flat[0].gflops > cache[0].gflops * 0.8);
        assert!(
            flat[2].gflops < cache[2].gflops,
            "flat {} should fall below cache {} past 16 GiB",
            flat[2].gflops,
            cache[2].gflops
        );
    }
}
