//! Parameter-sweep drivers: the experiment grids of the paper's Appendix A
//! (matrix orders × tile sizes for the dense kernels, the 968-matrix corpus
//! for the sparse kernels, and footprint sweeps for Stream/Stencil/FFT),
//! evaluated through the performance model for any OPM configuration.

use crate::registry::KernelId;
use opm_core::perf::PerfModel;
use opm_core::platform::{Machine, OpmConfig, PlatformSpec};
use opm_core::units::{GIB, MIB};
use opm_sparse::gen::MatrixSpec;
use rayon::prelude::*;

/// One point of a dense (size × tile) heat map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatPoint {
    /// Matrix order.
    pub n: usize,
    /// Tile size.
    pub tile: usize,
    /// Modeled throughput, GFlop/s.
    pub gflops: f64,
}

/// One point of a footprint curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Allocation footprint in bytes.
    pub footprint: f64,
    /// Modeled throughput, GFlop/s.
    pub gflops: f64,
}

/// One corpus matrix result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsePoint {
    /// The matrix description.
    pub spec: MatrixSpec,
    /// Allocation footprint in bytes.
    pub footprint: f64,
    /// Modeled throughput, GFlop/s.
    pub gflops: f64,
}

/// Which sparse kernel a corpus sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseKernelId {
    /// SpMV.
    Spmv,
    /// SpTRANS.
    Sptrans,
    /// SpTRSV.
    Sptrsv,
}

impl SparseKernelId {
    /// Corresponding registry id.
    pub fn kernel(&self) -> KernelId {
        match self {
            SparseKernelId::Spmv => KernelId::Spmv,
            SparseKernelId::Sptrans => KernelId::Sptrans,
            SparseKernelId::Sptrsv => KernelId::Sptrsv,
        }
    }
}

fn cores(machine: Machine) -> usize {
    PlatformSpec::for_machine(machine).cores
}

/// Paper Appendix A.2.1 matrix orders: `{256 .. 16128 .. 512}` on Broadwell,
/// `{256 .. 32000 .. 1024}` on KNL.
pub fn paper_dense_sizes(machine: Machine) -> Vec<usize> {
    match machine {
        Machine::Broadwell => (256..=16128).step_by(512).collect(),
        Machine::Knl => (256..=32000).step_by(1024).collect(),
    }
}

/// Paper Appendix A.2.1 tile sizes: `{128 .. 4096 .. 128}` on both.
pub fn paper_dense_tiles() -> Vec<usize> {
    (128..=4096).step_by(128).collect()
}

/// GEMM heat map under one configuration.
pub fn gemm_sweep(config: OpmConfig, sizes: &[usize], tiles: &[usize]) -> Vec<HeatPoint> {
    let model = PerfModel::for_config(config);
    let machine = config.machine();
    let threads = KernelId::Gemm.threads(machine);
    let c = cores(machine);
    sizes
        .par_iter()
        .flat_map_iter(|&n| {
            let model = model.clone();
            tiles.iter().map(move |&tile| {
                let prof = opm_dense::gemm_profile(n, tile, threads, c);
                HeatPoint {
                    n,
                    tile,
                    gflops: model.evaluate(&prof).gflops,
                }
            })
        })
        .collect()
}

/// Cholesky heat map under one configuration.
pub fn cholesky_sweep(config: OpmConfig, sizes: &[usize], tiles: &[usize]) -> Vec<HeatPoint> {
    let model = PerfModel::for_config(config);
    let machine = config.machine();
    let threads = KernelId::Cholesky.threads(machine);
    let c = cores(machine);
    sizes
        .par_iter()
        .flat_map_iter(|&n| {
            let model = model.clone();
            tiles.iter().map(move |&tile| {
                let prof = opm_dense::cholesky_profile(n, tile, threads, c);
                HeatPoint {
                    n,
                    tile,
                    gflops: model.evaluate(&prof).gflops,
                }
            })
        })
        .collect()
}

/// Corpus sweep for one sparse kernel under one configuration, using the
/// generator's analytic structure estimates (building all 968 matrices
/// would take hours; estimates carry rows/nnz/span/levels, which is what
/// the profiles need).
pub fn sparse_sweep(
    config: OpmConfig,
    kernel: SparseKernelId,
    specs: &[MatrixSpec],
) -> Vec<SparsePoint> {
    let model = PerfModel::for_config(config);
    let machine = config.machine();
    let threads = kernel.kernel().threads(machine);
    specs
        .par_iter()
        .map(|spec| {
            let est = spec.estimate();
            let prof = match kernel {
                SparseKernelId::Spmv => {
                    opm_sparse::spmv_profile(est.rows, est.nnz, est.avg_col_span, threads)
                }
                SparseKernelId::Sptrans => {
                    opm_sparse::sptrans_profile(est.rows, est.nnz, threads)
                }
                SparseKernelId::Sptrsv => opm_sparse::sptrsv_profile(
                    est.rows,
                    est.nnz,
                    est.avg_col_span,
                    est.levels,
                    threads,
                ),
            };
            SparsePoint {
                spec: *spec,
                footprint: prof.footprint,
                gflops: model.evaluate(&prof).gflops,
            }
        })
        .collect()
}

/// Stream TRIAD footprint curve (paper Figs. 12 / 23).
pub fn stream_curve(config: OpmConfig, footprints: &[f64]) -> Vec<CurvePoint> {
    let model = PerfModel::for_config(config);
    let threads = KernelId::Stream.threads(config.machine());
    footprints
        .iter()
        .map(|&fp| {
            let n = (fp / 24.0).max(64.0) as usize;
            let prof = opm_stencil::stream_profile(n, 4, threads);
            CurvePoint {
                footprint: prof.footprint,
                gflops: model.evaluate(&prof).gflops,
            }
        })
        .collect()
}

/// Stencil grid-size curve (paper Figs. 13 / 24). The block is the paper's
/// 64×64×96.
pub fn stencil_curve(config: OpmConfig, grids: &[(usize, usize, usize)]) -> Vec<CurvePoint> {
    let model = PerfModel::for_config(config);
    let machine = config.machine();
    let threads = KernelId::Stencil.threads(machine);
    let c = cores(machine);
    grids
        .iter()
        .map(|&(nx, ny, nz)| {
            let prof = opm_stencil::stencil_profile(nx, ny, nz, (64, 64, 96), threads, c);
            CurvePoint {
                footprint: prof.footprint,
                gflops: model.evaluate(&prof).gflops,
            }
        })
        .collect()
}

/// 3D-FFT size curve (paper Figs. 14 / 25).
pub fn fft_curve(config: OpmConfig, sizes: &[usize]) -> Vec<CurvePoint> {
    let model = PerfModel::for_config(config);
    let machine = config.machine();
    let threads = KernelId::Fft.threads(machine);
    let c = cores(machine);
    sizes
        .iter()
        .map(|&n| {
            let prof = opm_fft::fft3d_profile(n, threads, c);
            CurvePoint {
                footprint: prof.footprint,
                gflops: model.evaluate(&prof).gflops,
            }
        })
        .collect()
}

/// Paper stream footprint range (log-spaced samples).
pub fn paper_stream_footprints(machine: Machine, samples: usize) -> Vec<f64> {
    let (lo, hi) = match machine {
        Machine::Broadwell => (64.0 * 1024.0, 8.0 * GIB),
        Machine::Knl => (1.0 * MIB, 64.0 * GIB),
    };
    opm_core::stats::logspace(lo, hi, samples)
}

/// Paper stencil grid sweep: doubling grids from 32×16×16 (BRD) /
/// 128×64×64 (KNL), capped below the DDR capacity.
pub fn paper_stencil_grids(machine: Machine) -> Vec<(usize, usize, usize)> {
    let (mut g, cap_bytes) = match machine {
        Machine::Broadwell => ((32usize, 16usize, 16usize), 12.0 * GIB),
        // The paper's KNL sweep effectively starts past the 32 MB L2
        // (§4.2.3: no L2 peak observable).
        Machine::Knl => ((256, 128, 128), 80.0 * GIB),
    };
    let mut out = Vec::new();
    let mut axis = 0;
    loop {
        let fp = 3.0 * (g.0 * g.1 * g.2) as f64 * 8.0;
        if fp > cap_bytes {
            break;
        }
        out.push(g);
        // Double one axis at a time (the paper's "2x size in each step").
        match axis % 3 {
            0 => g.2 *= 2,
            1 => g.1 *= 2,
            _ => g.0 *= 2,
        }
        axis += 1;
    }
    out
}

/// Paper FFT sizes: `{96 .. 592 .. 16}` on Broadwell, `{96 .. 1088 .. 32}`
/// on KNL.
pub fn paper_fft_sizes(machine: Machine) -> Vec<usize> {
    match machine {
        Machine::Broadwell => (96..=592).step_by(16).collect(),
        Machine::Knl => (96..=1088).step_by(32).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_core::platform::{EdramMode, McdramMode};
    use opm_sparse::gen::corpus;

    #[test]
    fn gemm_sweep_peak_is_near_paper_value() {
        let pts = gemm_sweep(
            OpmConfig::Broadwell(EdramMode::Off),
            &paper_dense_sizes(Machine::Broadwell),
            &paper_dense_tiles(),
        );
        let peak = pts.iter().map(|p| p.gflops).fold(0.0, f64::max);
        // Paper Table 4: 204.5 GFlop/s without eDRAM (peak 236.8).
        assert!(peak > 150.0 && peak < 236.8, "peak {peak}");
    }

    #[test]
    fn gemm_edram_expands_near_peak_region() {
        // Paper tile grid (step 128) so well-chosen L3-resident tiles are
        // represented; a few representative sizes keep the test fast.
        let sizes: Vec<usize> = vec![2304, 8448, 14592];
        let tiles: Vec<usize> = paper_dense_tiles();
        let off = gemm_sweep(OpmConfig::Broadwell(EdramMode::Off), &sizes, &tiles);
        let on = gemm_sweep(OpmConfig::Broadwell(EdramMode::On), &sizes, &tiles);
        let peak_off = off.iter().map(|p| p.gflops).fold(0.0, f64::max);
        let peak_on = on.iter().map(|p| p.gflops).fold(0.0, f64::max);
        // (1) Peak barely moves.
        assert!((peak_on - peak_off).abs() / peak_off < 0.05);
        // (2) More configurations reach 70 % of peak with eDRAM.
        let near = |pts: &[HeatPoint], peak: f64| {
            pts.iter().filter(|p| p.gflops > 0.7 * peak).count()
        };
        assert!(
            near(&on, peak_off) > near(&off, peak_off),
            "near-peak region did not expand: {} vs {}",
            near(&on, peak_off),
            near(&off, peak_off)
        );
    }

    #[test]
    fn knl_dense_peaks_above_broadwell() {
        let sizes = vec![8192, 16384];
        let tiles = vec![512, 1024];
        let knl = gemm_sweep(OpmConfig::Knl(McdramMode::Cache), &sizes, &tiles);
        let peak = knl.iter().map(|p| p.gflops).fold(0.0, f64::max);
        // Paper Table 5: ~1483 GFlop/s in cache mode.
        assert!(peak > 700.0 && peak < 3072.0, "peak {peak}");
    }

    #[test]
    fn sparse_sweep_covers_corpus() {
        let specs = corpus(24);
        let pts = sparse_sweep(
            OpmConfig::Broadwell(EdramMode::On),
            SparseKernelId::Spmv,
            &specs,
        );
        assert_eq!(pts.len(), 24);
        for p in &pts {
            assert!(p.gflops > 0.0 && p.gflops < 50.0, "gflops {}", p.gflops);
        }
    }

    #[test]
    fn sptrsv_is_slower_than_spmv() {
        // Paper §3.1.2: SpTRSV "is often much slower than SpMV".
        let specs = corpus(12);
        let cfg = OpmConfig::Knl(McdramMode::Flat);
        let spmv = sparse_sweep(cfg, SparseKernelId::Spmv, &specs);
        let sptrsv = sparse_sweep(cfg, SparseKernelId::Sptrsv, &specs);
        let avg = |v: &[SparsePoint]| {
            v.iter().map(|p| p.gflops).sum::<f64>() / v.len() as f64
        };
        assert!(avg(&sptrsv) < avg(&spmv));
    }

    #[test]
    fn stream_curve_shows_mcdram_advantage() {
        let fps = paper_stream_footprints(Machine::Knl, 24);
        let flat = stream_curve(OpmConfig::Knl(McdramMode::Flat), &fps);
        let ddr = stream_curve(OpmConfig::Knl(McdramMode::Off), &fps);
        // At ~2 GiB the flat mode should win by roughly the bandwidth ratio.
        let pick = |v: &[CurvePoint]| {
            v.iter()
                .min_by(|a, b| {
                    (a.footprint - 2.0 * GIB)
                        .abs()
                        .partial_cmp(&(b.footprint - 2.0 * GIB).abs())
                        .unwrap()
                })
                .unwrap()
                .gflops
        };
        let ratio = pick(&flat) / pick(&ddr);
        assert!(ratio > 2.5 && ratio < 6.5, "ratio {ratio}");
    }

    #[test]
    fn stencil_grids_stay_under_memory_cap() {
        for machine in [Machine::Broadwell, Machine::Knl] {
            let grids = paper_stencil_grids(machine);
            assert!(grids.len() > 8, "need a real sweep");
            for (nx, ny, nz) in grids {
                assert!(3.0 * (nx * ny * nz) as f64 * 8.0 <= 80.0 * GIB);
            }
        }
    }

    #[test]
    fn fft_sizes_match_appendix() {
        let brd = paper_fft_sizes(Machine::Broadwell);
        assert_eq!(brd.first(), Some(&96));
        assert_eq!(brd.last(), Some(&592));
        let knl = paper_fft_sizes(Machine::Knl);
        assert_eq!(knl.last(), Some(&1088));
    }

    #[test]
    fn fft_curve_mcdram_flat_drops_past_capacity() {
        // Paper Fig. 25: flat mode drops once 16·n³ exceeds 16 GiB
        // (n ≈ 1024 for complex doubles), cache/hybrid hold on.
        let sizes = vec![512, 896, 1088];
        let flat = fft_curve(OpmConfig::Knl(McdramMode::Flat), &sizes);
        let cache = fft_curve(OpmConfig::Knl(McdramMode::Cache), &sizes);
        assert!(flat[0].gflops > cache[0].gflops * 0.8);
        assert!(
            flat[2].gflops < cache[2].gflops,
            "flat {} should fall below cache {} past 16 GiB",
            flat[2].gflops,
            cache[2].gflops
        );
    }
}
