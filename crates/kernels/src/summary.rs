//! Summary statistics across aligned sweeps — the machinery behind the
//! paper's Tables 4 and 5 (best throughput, average/max performance gap,
//! average/max speedup of an OPM configuration against a baseline).

/// One row of a Table 4/5-style summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Kernel name.
    pub kernel: String,
    /// Best baseline throughput, GFlop/s.
    pub base_best: f64,
    /// Best OPM-configuration throughput, GFlop/s.
    pub opm_best: f64,
    /// Mean pointwise gap `opm − base`, GFlop/s.
    pub avg_gap: f64,
    /// Max pointwise gap, GFlop/s.
    pub max_gap: f64,
    /// Mean pointwise speedup `opm / base`.
    pub avg_speedup: f64,
    /// Max pointwise speedup.
    pub max_speedup: f64,
}

/// Summarize two aligned sweeps (same parameter order). Panics on length
/// mismatch or empty input.
pub fn summarize_pair(kernel: &str, base: &[f64], opm: &[f64]) -> SummaryRow {
    assert_eq!(base.len(), opm.len(), "sweeps must align");
    assert!(!base.is_empty(), "empty sweep");
    let n = base.len() as f64;
    let mut base_best = f64::NEG_INFINITY;
    let mut opm_best = f64::NEG_INFINITY;
    let mut gap_sum = 0.0;
    let mut max_gap = f64::NEG_INFINITY;
    let mut sp_sum = 0.0;
    let mut max_sp = f64::NEG_INFINITY;
    for (&b, &o) in base.iter().zip(opm) {
        assert!(b > 0.0 && o.is_finite(), "throughputs must be positive");
        base_best = base_best.max(b);
        opm_best = opm_best.max(o);
        let gap = o - b;
        gap_sum += gap;
        max_gap = max_gap.max(gap);
        let sp = o / b;
        sp_sum += sp;
        max_sp = max_sp.max(sp);
    }
    SummaryRow {
        kernel: kernel.to_string(),
        base_best,
        opm_best,
        avg_gap: gap_sum / n,
        max_gap,
        avg_speedup: sp_sum / n,
        max_speedup: max_sp,
    }
}

impl SummaryRow {
    /// Fractional improvement of the best achievable throughput.
    pub fn peak_improvement(&self) -> f64 {
        self.opm_best / self.base_best - 1.0
    }
}

/// Cross-kernel averages reported in the paper's §5.1 prose ("across all
/// the kernels and inputs...").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossKernelSummary {
    /// Mean of per-kernel average gaps, GFlop/s.
    pub avg_gap: f64,
    /// Largest per-kernel max gap, GFlop/s.
    pub max_gap: f64,
    /// Mean of per-kernel average speedups.
    pub avg_speedup: f64,
    /// Largest per-kernel max speedup.
    pub max_speedup: f64,
}

/// Aggregate summary rows.
pub fn cross_kernel(rows: &[SummaryRow]) -> CrossKernelSummary {
    assert!(!rows.is_empty());
    let n = rows.len() as f64;
    CrossKernelSummary {
        avg_gap: rows.iter().map(|r| r.avg_gap).sum::<f64>() / n,
        max_gap: rows
            .iter()
            .map(|r| r.max_gap)
            .fold(f64::NEG_INFINITY, f64::max),
        avg_speedup: rows.iter().map(|r| r.avg_speedup).sum::<f64>() / n,
        max_speedup: rows
            .iter()
            .map(|r| r.max_speedup)
            .fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let base = [10.0, 20.0];
        let opm = [15.0, 20.0];
        let s = summarize_pair("k", &base, &opm);
        assert_eq!(s.base_best, 20.0);
        assert_eq!(s.opm_best, 20.0);
        assert_eq!(s.avg_gap, 2.5);
        assert_eq!(s.max_gap, 5.0);
        assert_eq!(s.avg_speedup, 1.25);
        assert_eq!(s.max_speedup, 1.5);
        assert_eq!(s.peak_improvement(), 0.0);
    }

    #[test]
    fn cross_kernel_aggregates() {
        let rows = vec![
            summarize_pair("a", &[10.0], &[12.0]),
            summarize_pair("b", &[10.0], &[30.0]),
        ];
        let c = cross_kernel(&rows);
        assert_eq!(c.avg_gap, 11.0);
        assert_eq!(c.max_gap, 20.0);
        assert_eq!(c.avg_speedup, 2.1);
        assert_eq!(c.max_speedup, 3.0);
    }

    #[test]
    #[should_panic(expected = "sweeps must align")]
    fn misaligned_sweeps_panic() {
        summarize_pair("k", &[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty sweep")]
    fn empty_sweep_panics() {
        summarize_pair("k", &[], &[]);
    }
}
