//! The kernel registry: Table 2 of the paper as code. Each of the eight
//! scientific kernels carries its dwarf class, complexity, operation/byte
//! formulas, arithmetic intensity, and per-machine optimal thread count.

use opm_core::platform::Machine;

/// The eight evaluated kernels (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// Dense matrix–matrix multiplication (PLASMA).
    Gemm,
    /// Dense Cholesky decomposition (PLASMA).
    Cholesky,
    /// Sparse matrix–vector multiplication (CSR5).
    Spmv,
    /// Sparse transposition (ScanTrans/MergeTrans).
    Sptrans,
    /// Sparse triangular solve (SpMP).
    Sptrsv,
    /// 3D fast Fourier transform (FFTW).
    Fft,
    /// iso3dfd structured-grid stencil (YASK).
    Stencil,
    /// STREAM TRIAD (McCalpin).
    Stream,
}

/// Intensity class used for grouping (paper §3.1 and Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntensityClass {
    /// Strongly compute bound (GEMM, Cholesky).
    Dense,
    /// Strongly bandwidth bound (SpMV, SpTRANS, SpTRSV, Stream).
    Sparse,
    /// In between (FFT, Stencil).
    Medium,
}

impl KernelId {
    /// All kernels in Table 2 order.
    pub const ALL: [KernelId; 8] = [
        KernelId::Gemm,
        KernelId::Cholesky,
        KernelId::Spmv,
        KernelId::Sptrans,
        KernelId::Sptrsv,
        KernelId::Fft,
        KernelId::Stencil,
        KernelId::Stream,
    ];

    /// Kernel name as used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            KernelId::Gemm => "GEMM",
            KernelId::Cholesky => "Cholesky",
            KernelId::Spmv => "SpMV",
            KernelId::Sptrans => "SpTRANS",
            KernelId::Sptrsv => "SpTRSV",
            KernelId::Fft => "FFT",
            KernelId::Stencil => "Stencil",
            KernelId::Stream => "Stream",
        }
    }

    /// Reference implementation benchmarked by the paper.
    pub fn implementation(&self) -> &'static str {
        match self {
            KernelId::Gemm | KernelId::Cholesky => "PLASMA",
            KernelId::Spmv => "CSR5",
            KernelId::Sptrans => "Scan/MergeTrans",
            KernelId::Sptrsv => "SpMP (P2P-SpTRSV)",
            KernelId::Fft => "FFTW",
            KernelId::Stencil => "YASK iso3dfd",
            KernelId::Stream => "STREAM",
        }
    }

    /// Berkeley dwarf class (Table 2).
    pub fn dwarf(&self) -> &'static str {
        match self {
            KernelId::Gemm | KernelId::Cholesky => "Dense Linear Algebra",
            KernelId::Spmv | KernelId::Sptrans | KernelId::Sptrsv => "Sparse Linear Algebra",
            KernelId::Fft => "Spectral Methods",
            KernelId::Stencil => "Structured Grid",
            KernelId::Stream => "N/A",
        }
    }

    /// Intensity class (paper groups: dense / sparse / medium).
    pub fn class(&self) -> IntensityClass {
        match self {
            KernelId::Gemm | KernelId::Cholesky => IntensityClass::Dense,
            KernelId::Spmv | KernelId::Sptrans | KernelId::Sptrsv | KernelId::Stream => {
                IntensityClass::Sparse
            }
            KernelId::Fft | KernelId::Stencil => IntensityClass::Medium,
        }
    }

    /// Optimal thread count per machine (Table 2, "Thds": BRD/KNL).
    pub fn threads(&self, machine: Machine) -> usize {
        let (brd, knl) = match self {
            KernelId::Gemm | KernelId::Cholesky | KernelId::Sptrans => (4, 64),
            KernelId::Spmv
            | KernelId::Sptrsv
            | KernelId::Fft
            | KernelId::Stencil
            | KernelId::Stream => (8, 256),
        };
        match machine {
            Machine::Broadwell => brd,
            Machine::Knl => knl,
        }
    }

    /// Table 2 arithmetic intensity at the reference point used by Fig. 5
    /// (`n = 1024`, `nnz = 1024·1024`, `M = 1024` — square kernels with one
    /// nonzero per 1024² entries per row scale; the figure only needs the
    /// order of magnitude).
    pub fn reference_ai(&self) -> f64 {
        let n = 1024.0f64;
        let nnz = 1024.0 * 1024.0;
        let m = 1024.0;
        match self {
            KernelId::Gemm => n / 16.0,
            KernelId::Cholesky => n / 24.0,
            KernelId::Spmv | KernelId::Sptrsv => (nnz + 2.0 * m) / (12.0 * nnz + 20.0 * m),
            KernelId::Sptrans => (nnz * nnz.log2()) / (24.0 * nnz + 8.0 * m) / 16.0,
            KernelId::Fft => 5.0 * n.log2() / 48.0,
            KernelId::Stencil => 7.625,
            KernelId::Stream => 0.0625,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_kernels_with_unique_names() {
        let mut names: Vec<&str> = KernelId::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn thread_counts_match_table2() {
        use Machine::*;
        assert_eq!(KernelId::Gemm.threads(Broadwell), 4);
        assert_eq!(KernelId::Gemm.threads(Knl), 64);
        assert_eq!(KernelId::Spmv.threads(Broadwell), 8);
        assert_eq!(KernelId::Spmv.threads(Knl), 256);
        assert_eq!(KernelId::Sptrans.threads(Knl), 64);
        assert_eq!(KernelId::Stream.threads(Knl), 256);
    }

    #[test]
    fn intensity_spectrum_ordering() {
        // Fig. 4: Stream < SpMV/SpTRSV < SpTRANS < FFT < Stencil < Cholesky
        // < GEMM.
        let ai = |k: KernelId| k.reference_ai();
        assert!(ai(KernelId::Stream) < ai(KernelId::Spmv));
        assert!(ai(KernelId::Spmv) < ai(KernelId::Fft));
        assert!(ai(KernelId::Fft) < ai(KernelId::Stencil));
        assert!(ai(KernelId::Stencil) < ai(KernelId::Cholesky));
        assert!(ai(KernelId::Cholesky) < ai(KernelId::Gemm));
    }

    #[test]
    fn classes_partition_kernels() {
        let dense = KernelId::ALL
            .iter()
            .filter(|k| k.class() == IntensityClass::Dense)
            .count();
        let sparse = KernelId::ALL
            .iter()
            .filter(|k| k.class() == IntensityClass::Sparse)
            .count();
        let medium = KernelId::ALL
            .iter()
            .filter(|k| k.class() == IntensityClass::Medium)
            .count();
        assert_eq!((dense, sparse, medium), (2, 4, 2));
    }

    #[test]
    fn known_ai_values() {
        assert!((KernelId::Gemm.reference_ai() - 64.0).abs() < 1e-12);
        assert!((KernelId::Stream.reference_ai() - 0.0625).abs() < 1e-12);
        assert!((KernelId::Stencil.reference_ai() - 7.625).abs() < 1e-12);
        // SpMV AI ~ 1/12 for nnz >> M.
        assert!((KernelId::Spmv.reference_ai() - 1.0 / 12.0).abs() < 0.01);
    }
}
