//! Address-trace twins of the kernel loop structures, for exact simulation
//! and for validating the analytic access profiles: each generator replays
//! the memory references the corresponding implementation makes (same loop
//! order, same operands, real sparse structure), producing a
//! [`Trace`] that `opm-memsim` can run or analyze with
//! reuse-distance histograms.

use opm_memsim::Trace;
use opm_sparse::CsrMatrix;

/// Byte sizes of the traced element types.
const F64: u32 = 8;
const IDX: u32 = 4;
const PTR: u32 = 8;

/// STREAM TRIAD `a = b + α·c` over `n` doubles, `passes` repetitions.
/// Layout: `a @ 0`, `b`, `c` contiguous.
pub fn stream_triad_trace(n: usize, passes: usize) -> Trace {
    let mut t = Trace::new();
    let a0 = 0u64;
    let b0 = (n as u64) * 8;
    let c0 = 2 * (n as u64) * 8;
    for _ in 0..passes {
        for i in 0..n as u64 {
            t.read(b0 + i * 8, F64);
            t.read(c0 + i * 8, F64);
            t.write(a0 + i * 8, F64);
        }
    }
    t
}

/// CSR SpMV `y = A·x`: row-pointer walk, value/index streaming, `x`
/// gathers, `y` writes — the reference loop of
/// [`opm_sparse::spmv_serial`]. Layout: `row_ptr @ 0`, then `col_idx`,
/// `vals`, `x`, `y`.
pub fn spmv_trace(a: &CsrMatrix, passes: usize) -> Trace {
    let mut t = Trace::new();
    let ptr0 = 0u64;
    let idx0 = ptr0 + (a.row_ptr.len() as u64) * 8;
    let val0 = idx0 + (a.col_idx.len() as u64) * 4;
    let x0 = val0 + (a.vals.len() as u64) * 8;
    let y0 = x0 + (a.cols as u64) * 8;
    for _ in 0..passes {
        for i in 0..a.rows {
            t.read(ptr0 + (i as u64) * 8, PTR);
            t.read(ptr0 + (i as u64 + 1) * 8, PTR);
            let (cols, _) = a.row(i);
            let base = a.row_ptr[i] as u64;
            for (k, &c) in cols.iter().enumerate() {
                t.read(idx0 + (base + k as u64) * 4, IDX);
                t.read(val0 + (base + k as u64) * 8, F64);
                t.read(x0 + (c as u64) * 8, F64);
            }
            t.write(y0 + (i as u64) * 8, F64);
        }
    }
    t
}

/// Blocked GEMM `C += A·B` with square tiles — the loop order of
/// [`opm_dense::gemm_blocked`]. Layout: `A @ 0`, `B`, `C`.
pub fn gemm_blocked_trace(n: usize, tile: usize) -> Trace {
    let mut t = Trace::new();
    let a0 = 0u64;
    let b0 = (n * n) as u64 * 8;
    let c0 = 2 * (n * n) as u64 * 8;
    let at = |i: usize, j: usize| a0 + ((i * n + j) as u64) * 8;
    let bt = |i: usize, j: usize| b0 + ((i * n + j) as u64) * 8;
    let ct = |i: usize, j: usize| c0 + ((i * n + j) as u64) * 8;
    for i0 in (0..n).step_by(tile) {
        let i1 = (i0 + tile).min(n);
        for l0 in (0..n).step_by(tile) {
            let l1 = (l0 + tile).min(n);
            for j0 in (0..n).step_by(tile) {
                let j1 = (j0 + tile).min(n);
                for i in i0..i1 {
                    for l in l0..l1 {
                        t.read(at(i, l), F64);
                        for j in j0..j1 {
                            t.read(bt(l, j), F64);
                            t.read(ct(i, j), F64);
                            t.write(ct(i, j), F64);
                        }
                    }
                }
            }
        }
    }
    t
}

/// iso3dfd sweep over an `n³` grid (interior only), z fastest —
/// the loop order of [`opm_stencil::step_naive`]. Layout: `prev @ 0`,
/// `cur`, `next`.
pub fn stencil_trace(n: usize) -> Trace {
    use opm_stencil::HALF;
    assert!(n > 2 * HALF, "grid too small");
    let mut t = Trace::new();
    let cells = (n * n * n) as u64;
    let prev0 = 0u64;
    let cur0 = cells * 8;
    let next0 = 2 * cells * 8;
    let idx = |x: usize, y: usize, z: usize| (((x * n) + y) as u64 * n as u64 + z as u64) * 8;
    for x in HALF..n - HALF {
        for y in HALF..n - HALF {
            for z in HALF..n - HALF {
                t.read(cur0 + idx(x, y, z), F64);
                for r in 1..=HALF {
                    t.read(cur0 + idx(x + r, y, z), F64);
                    t.read(cur0 + idx(x - r, y, z), F64);
                    t.read(cur0 + idx(x, y + r, z), F64);
                    t.read(cur0 + idx(x, y - r, z), F64);
                    t.read(cur0 + idx(x, y, z + r), F64);
                    t.read(cur0 + idx(x, y, z - r), F64);
                }
                t.read(prev0 + idx(x, y, z), F64);
                t.write(next0 + idx(x, y, z), F64);
            }
        }
    }
    t
}

/// ScanTrans sparse transposition: histogram pass, scan, scatter pass —
/// the loop order of [`opm_sparse::sptrans_scan`]. Layout: input CSR
/// arrays, then the output CSC arrays.
pub fn sptrans_trace(a: &CsrMatrix) -> Trace {
    let mut t = Trace::new();
    let nnz = a.nnz() as u64;
    let in_idx = 0u64;
    let in_val = in_idx + nnz * 4;
    let col_ptr0 = in_val + nnz * 8;
    let out_row = col_ptr0 + (a.cols as u64 + 1) * 8;
    let out_val = out_row + nnz * 4;
    // Pass 1: histogram of column counts (stream indices, RMW the bucket).
    for (k, &c) in a.col_idx.iter().enumerate() {
        t.read(in_idx + k as u64 * 4, IDX);
        t.read(col_ptr0 + (c as u64 + 1) * 8, PTR);
        t.write(col_ptr0 + (c as u64 + 1) * 8, PTR);
    }
    // Pass 2: prefix scan over col_ptr.
    for j in 0..=a.cols as u64 {
        t.read(col_ptr0 + j * 8, PTR);
        t.write(col_ptr0 + j * 8, PTR);
    }
    // Pass 3: ordered scatter to the real CSC destinations.
    let mut col_start = vec![0u64; a.cols + 1];
    for &c in &a.col_idx {
        col_start[c as usize + 1] += 1;
    }
    for j in 0..a.cols {
        col_start[j + 1] += col_start[j];
    }
    let mut cursor = vec![0u64; a.cols];
    for i in 0..a.rows {
        let (cols, _) = a.row(i);
        let base = a.row_ptr[i] as u64;
        for (k, &c) in cols.iter().enumerate() {
            t.read(in_idx + (base + k as u64) * 4, IDX);
            t.read(in_val + (base + k as u64) * 8, F64);
            let dst = col_start[c as usize] + cursor[c as usize];
            cursor[c as usize] += 1;
            t.write(out_row + dst * 4, IDX);
            t.write(out_val + dst * 8, F64);
        }
    }
    t
}

/// Forward substitution (serial SpTRSV): the loop order of
/// [`opm_sparse::sptrsv_serial`] — like SpMV but the gathered vector is
/// the output `x` itself (the dependency that kills MLP).
pub fn sptrsv_trace(l: &CsrMatrix) -> Trace {
    let mut t = Trace::new();
    let ptr0 = 0u64;
    let idx0 = ptr0 + (l.row_ptr.len() as u64) * 8;
    let val0 = idx0 + (l.col_idx.len() as u64) * 4;
    let b0 = val0 + (l.vals.len() as u64) * 8;
    let x0 = b0 + (l.rows as u64) * 8;
    for i in 0..l.rows {
        t.read(ptr0 + (i as u64) * 8, PTR);
        t.read(b0 + (i as u64) * 8, F64);
        let (cols, _) = l.row(i);
        let base = l.row_ptr[i] as u64;
        for (k, &c) in cols.iter().enumerate() {
            t.read(idx0 + (base + k as u64) * 4, IDX);
            t.read(val0 + (base + k as u64) * 8, F64);
            if (c as usize) < i {
                t.read(x0 + (c as u64) * 8, F64);
            }
        }
        t.write(x0 + (i as u64) * 8, F64);
    }
    t
}

/// One pencil-decomposed 3D FFT pass structure (Z pencils contiguous, then
/// strided Y and X gathers), matching [`opm_fft::fft3d()`]'s access order at
/// pencil granularity (butterfly-internal reuse folded to `log n` touches).
pub fn fft3d_trace(n: usize) -> Trace {
    let mut t = Trace::new();
    let elem = 16u32; // complex
    let log_n = (n as f64).log2().ceil().max(1.0) as u64;
    let at = |x: usize, y: usize, z: usize| (((x * n + y) * n + z) as u64) * 16;
    // Z pass: contiguous pencils, log n sweeps each.
    for x in 0..n {
        for y in 0..n {
            for _pass in 0..log_n.min(3) {
                for z in 0..n {
                    t.read(at(x, y, z), elem);
                    t.write(at(x, y, z), elem);
                }
            }
        }
    }
    // Y pass: stride-n gathers.
    for x in 0..n {
        for z in 0..n {
            for y in 0..n {
                t.read(at(x, y, z), elem);
            }
            for y in 0..n {
                t.write(at(x, y, z), elem);
            }
        }
    }
    // X pass: stride-n² gathers.
    for y in 0..n {
        for z in 0..n {
            for x in 0..n {
                t.read(at(x, y, z), elem);
            }
            for x in 0..n {
                t.write(at(x, y, z), elem);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_memsim::reuse_histogram;
    use opm_sparse::{MatrixKind, MatrixSpec};

    #[test]
    fn stream_trace_counts() {
        let t = stream_triad_trace(100, 2);
        assert_eq!(t.len(), 2 * 300);
        assert_eq!(t.bytes(), 2 * 300 * 8);
    }

    #[test]
    fn stream_trace_reuse_is_footprint_sized() {
        // Second pass re-touches everything: finite reuse ≈ footprint.
        let n = 512;
        let t = stream_triad_trace(n, 2);
        let h = reuse_histogram(&t);
        let footprint_lines = (3 * n * 8 / 64) as u64;
        // A cache of the whole footprint captures the second pass.
        assert!(h.hit_ratio(footprint_lines + 8) > 0.45);
        // A half-footprint cache captures only intra-line locality.
        let small = h.hit_ratio(footprint_lines / 4);
        assert!(small < h.hit_ratio(footprint_lines + 8));
    }

    #[test]
    fn spmv_trace_structure_drives_gather_locality() {
        // The banded matrix's x-gathers hit in a small cache; the random
        // matrix's don't — the mechanism behind the paper's structure heat
        // maps, measured on real traces.
        let n = 4096;
        let banded = MatrixSpec::new(MatrixKind::Banded { half_band: 8 }, n, 8 * n, 1).build();
        let random = MatrixSpec::new(MatrixKind::RandomUniform, n, 8 * n, 1).build();
        let hb = reuse_histogram(&spmv_trace(&banded, 1));
        let hr = reuse_histogram(&spmv_trace(&random, 1));
        let small_cache_lines = 64; // 4 KiB
        assert!(
            hb.hit_ratio(small_cache_lines) > hr.hit_ratio(small_cache_lines) + 0.05,
            "banded {} vs random {}",
            hb.hit_ratio(small_cache_lines),
            hr.hit_ratio(small_cache_lines)
        );
    }

    #[test]
    fn spmv_trace_matches_profile_tier_working_set() {
        // The analytic profile's gather tier working set should predict the
        // capacity where the trace's hit ratio saturates.
        let n = 2048;
        let band = 8usize;
        let m = MatrixSpec::new(MatrixKind::Banded { half_band: band }, n, 6 * n, 2).build();
        let stats = m.stats();
        let prof = opm_sparse::spmv_profile(stats.rows, stats.nnz, stats.avg_col_span, 8);
        let gather_ws = prof.phases[0].tiers[1].working_set;
        // Within one pass, a cache of ~the gather working set captures the
        // x reuse.
        let h = reuse_histogram(&spmv_trace(&m, 1));
        let at_ws = h.hit_ratio((gather_ws / 64.0).ceil() as u64 * 4);
        let tiny = h.hit_ratio(2);
        assert!(at_ws > tiny + 0.2, "ws {at_ws} vs tiny {tiny}");
    }

    #[test]
    fn gemm_trace_tile_working_set_is_visible() {
        // With tiling, a cache holding ~3 tiles captures most traffic; the
        // same cache on the untiled (tile = n) trace captures much less.
        let n = 48;
        let tile = 8;
        let tiled = reuse_histogram(&gemm_blocked_trace(n, tile));
        let untiled = reuse_histogram(&gemm_blocked_trace(n, n));
        // Register-level reuse keeps both hit ratios high; the *miss*
        // ratio — what escapes a tile-sized cache — is what tiling cuts.
        let tile_ws_lines = (3 * tile * tile * 8 / 64) as u64 * 2;
        let miss = |h: &opm_memsim::ReuseHistogram| 1.0 - h.hit_ratio(tile_ws_lines);
        assert!(
            miss(&untiled) > 2.0 * miss(&tiled),
            "untiled miss {} vs tiled miss {}",
            miss(&untiled),
            miss(&tiled)
        );
    }

    #[test]
    fn stencil_trace_has_strong_neighbor_reuse() {
        let n = 2 * opm_stencil::HALF + 6;
        let h = reuse_histogram(&stencil_trace(n));
        // 49 reads per cell, each cell read ~49 times across neighbors: a
        // plane-sized cache captures nearly everything.
        let plane_lines = ((n * n * 8 * 20) / 64) as u64;
        assert!(
            h.hit_ratio(plane_lines) > 0.8,
            "{}",
            h.hit_ratio(plane_lines)
        );
    }

    #[test]
    fn sptrsv_trace_gathers_from_its_own_output() {
        // The x-vector appears both as writes and reads; reuse of x is
        // short-range for banded systems.
        let banded = MatrixSpec::new(MatrixKind::Banded { half_band: 4 }, 2048, 12288, 5)
            .build()
            .to_lower_triangular();
        let random = MatrixSpec::new(MatrixKind::RandomUniform, 2048, 12288, 5)
            .build()
            .to_lower_triangular();
        let hb = reuse_histogram(&sptrsv_trace(&banded));
        let hr = reuse_histogram(&sptrsv_trace(&random));
        assert!(
            hb.hit_ratio(64) > hr.hit_ratio(64),
            "banded x-reuse should be tighter"
        );
    }

    #[test]
    fn sptrans_trace_has_little_reuse() {
        // SpTRANS "has less data reuse" (§4.1.2): a mid-size cache helps it
        // far less than it helps SpMV on the same matrix.
        let m = MatrixSpec::new(MatrixKind::RandomUniform, 4096, 32768, 6).build();
        let h_trans = reuse_histogram(&sptrans_trace(&m));
        let h_spmv = reuse_histogram(&spmv_trace(&m, 2));
        let lines = 2048; // 128 KiB
        assert!(
            h_spmv.hit_ratio(lines) > h_trans.hit_ratio(lines),
            "spmv {} vs sptrans {}",
            h_spmv.hit_ratio(lines),
            h_trans.hit_ratio(lines)
        );
    }

    #[test]
    fn fft_trace_z_pass_is_local_x_pass_is_not() {
        let n = 16;
        let t = fft3d_trace(n);
        let h = reuse_histogram(&t);
        // Pencil-sized cache captures the Z-pass repeats but not the
        // strided X gathers; a grid-sized cache captures everything finite.
        let pencil_lines = (n * 16 / 64 + 2) as u64;
        let grid_lines = (n * n * n * 16 / 64 + 16) as u64;
        assert!(h.hit_ratio(grid_lines) > h.hit_ratio(pencil_lines) + 0.2);
        assert!(h.hit_ratio(pencil_lines) > 0.2);
    }

    #[test]
    fn traces_feed_the_hierarchy_simulator() {
        use opm_core::platform::{EdramMode, OpmConfig};
        use opm_memsim::HierarchySim;
        let m = MatrixSpec::new(MatrixKind::Banded { half_band: 4 }, 1024, 6144, 3).build();
        let t = spmv_trace(&m, 2);
        let mut sim = HierarchySim::for_config(OpmConfig::Broadwell(EdramMode::On), 1024);
        let r = sim.run(&t);
        assert_eq!(
            r.accesses,
            t.accesses
                .iter()
                .map(|a| a.lines().count() as u64)
                .sum::<u64>()
        );
        assert!(r.on_package_ratio() > 0.5);
    }
}
