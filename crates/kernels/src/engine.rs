//! The shared sweep-execution engine.
//!
//! Every figure/table pipeline in this repository reduces to the same
//! shape: evaluate the performance model over a grid of sweep points,
//! where each point first derives an [`AccessProfile`] (pure function of
//! kernel + problem parameters) and then evaluates it under one OPM
//! configuration. This module factors that shape out once:
//!
//! * **Parallel work queue** — [`Engine::par_map`] dispatches grid points
//!   to a pool of `std::thread::scope` workers through an atomic index.
//!   Results are tagged with their point index and merged in sorted order,
//!   so a run with any thread count produces *byte-identical* output to a
//!   serial run.
//! * **Profile memoization** — [`Engine::profile`] caches computed access
//!   profiles under a [`ProfileKey`]. Profiles do not depend on the OPM
//!   configuration, so one computation is reused across eDRAM on/off and
//!   all four MCDRAM modes (and across every figure sweeping the same
//!   grid).
//! * **Observability** — [`Engine::run_stage`] wraps each sweep with wall
//!   time, point count, and cache hit/miss deltas, accumulated as
//!   [`StageRecord`]s for the run-manifest emitted by `opm-bench`.
//!
//! The process-wide instance ([`Engine::global`]) is configured from the
//! environment: `OPM_THREADS` (worker count, default = available
//! parallelism), `OPM_PROFILE_CACHE` (`0`/`off`/`false` disables
//! memoization), and `OPM_REDUCED` (`1`/`on`/`true` selects the reduced
//! harness grids in `opm-bench`).

use opm_core::profile::{AccessProfile, ProfileKey};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Engine tuning knobs, normally read from the environment once per
/// process.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for [`Engine::par_map`] (1 = serial).
    pub threads: usize,
    /// Whether [`Engine::profile`] memoizes computed profiles.
    pub cache_enabled: bool,
    /// Whether harness binaries should use reduced sweep grids.
    pub reduced: bool,
}

impl EngineConfig {
    /// Read `OPM_THREADS` / `OPM_PROFILE_CACHE` / `OPM_REDUCED`.
    pub fn from_env() -> Self {
        let threads = std::env::var("OPM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(default_threads);
        EngineConfig {
            threads,
            cache_enabled: !env_is_off("OPM_PROFILE_CACHE"),
            reduced: env_is_on("OPM_REDUCED"),
        }
    }

    /// Serial, cache-enabled, full-grid config (useful as a baseline in
    /// determinism tests).
    pub fn serial() -> Self {
        EngineConfig {
            threads: 1,
            cache_enabled: true,
            reduced: false,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: default_threads(),
            cache_enabled: true,
            reduced: false,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_is_off(name: &str) -> bool {
    matches!(
        std::env::var(name).as_deref(),
        Ok("0") | Ok("off") | Ok("false") | Ok("no")
    )
}

fn env_is_on(name: &str) -> bool {
    matches!(
        std::env::var(name).as_deref(),
        Ok("1") | Ok("on") | Ok("true") | Ok("yes")
    )
}

/// Timing/counter record of one completed sweep stage.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Stage label, e.g. `gemm_sweep/knl-flat`.
    pub label: String,
    /// Sweep points evaluated by the stage.
    pub points: usize,
    /// Wall-clock time of the stage.
    pub wall_ns: u128,
    /// Profile-cache hits attributed to the stage.
    pub cache_hits: u64,
    /// Profile-cache misses attributed to the stage.
    pub cache_misses: u64,
}

impl StageRecord {
    /// Wall time in seconds.
    pub fn wall_secs(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }

    /// Evaluated points per second (0 for an instantaneous stage).
    pub fn points_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.points as f64 / self.wall_secs()
        }
    }
}

/// The sweep-execution engine: a worker pool plus the memoized profile
/// cache and the stage log. See the module docs for the design.
pub struct Engine {
    config: EngineConfig,
    cache: Mutex<HashMap<ProfileKey, Arc<AccessProfile>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stages: Mutex<Vec<StageRecord>>,
}

impl Engine {
    /// Engine with an explicit configuration (tests, determinism checks).
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stages: Mutex::new(Vec::new()),
        }
    }

    /// Engine configured from the environment.
    pub fn from_env() -> Self {
        Engine::new(EngineConfig::from_env())
    }

    /// The process-wide engine, created from the environment on first use.
    /// Set `OPM_THREADS` / `OPM_PROFILE_CACHE` / `OPM_REDUCED` before the
    /// first sweep to take effect.
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(Engine::from_env)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Look up (or compute and memoize) the access profile for `key`.
    ///
    /// `compute` must be the pure profile constructor matching `key`; it
    /// runs at most once per key while the cache is enabled. With the
    /// cache disabled every call computes afresh, which is what the
    /// determinism tests compare against.
    pub fn profile(
        &self,
        key: ProfileKey,
        compute: impl FnOnce() -> AccessProfile,
    ) -> Arc<AccessProfile> {
        if !self.config.cache_enabled {
            return Arc::new(compute());
        }
        if let Some(hit) = self.cache.lock().unwrap().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // Compute outside the lock: a concurrent duplicate costs a second
        // computation of the same pure function, never a wrong result.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(compute());
        self.cache
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(fresh)
            .clone()
    }

    /// Lifetime (hits, misses) of the profile cache.
    pub fn cache_counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Distinct profiles currently memoized.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Drop every memoized profile (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.lock().unwrap().clear();
    }

    /// Map `f` over `items` on the worker pool, preserving input order.
    ///
    /// Points are handed out through an atomic index (dynamic load
    /// balancing — grid points vary widely in cost), each worker tags its
    /// results with the point index, and the merged output is sorted by
    /// that index. The result is therefore identical — element for
    /// element — for every thread count, including 1.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = self.config.threads.clamp(1, items.len().max(1));
        if threads == 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, f(&items[i])));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine worker panicked"))
                .collect()
        });
        let mut indexed: Vec<(usize, R)> = parts.into_iter().flatten().collect();
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Run `f` as a named stage, recording wall time, its reported point
    /// count, and the cache hit/miss delta. Stages are assumed to run
    /// sequentially (parallelism lives *inside* a stage, in
    /// [`Engine::par_map`]); overlapping stages would attribute each
    /// other's cache traffic.
    pub fn run_stage<R>(&self, label: &str, f: impl FnOnce(&Engine) -> (R, usize)) -> R {
        let (h0, m0) = self.cache_counters();
        let start = Instant::now();
        let (out, points) = f(self);
        let wall_ns = start.elapsed().as_nanos();
        let (h1, m1) = self.cache_counters();
        self.stages.lock().unwrap().push(StageRecord {
            label: label.to_string(),
            points,
            wall_ns,
            cache_hits: h1 - h0,
            cache_misses: m1 - m0,
        });
        out
    }

    /// Number of stages recorded so far (use with [`Engine::stages_since`]
    /// to attribute stages to a window, e.g. one figure).
    pub fn stage_count(&self) -> usize {
        self.stages.lock().unwrap().len()
    }

    /// Copies of the stage records from index `from` onward.
    pub fn stages_since(&self, from: usize) -> Vec<StageRecord> {
        let stages = self.stages.lock().unwrap();
        stages[from.min(stages.len())..].to_vec()
    }

    /// Copies of every stage record.
    pub fn stages(&self) -> Vec<StageRecord> {
        self.stages_since(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_core::profile::{Phase, Tier};

    fn probe_profile(n: usize) -> AccessProfile {
        let mut phase = Phase::new("p", n as f64, 8.0 * n as f64);
        phase.tiers.push(Tier::new(8.0 * n as f64, 0.5));
        AccessProfile::single("probe", phase, 8.0 * n as f64)
    }

    #[test]
    fn par_map_is_order_preserving_for_every_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let eng = Engine::new(EngineConfig {
                threads,
                cache_enabled: true,
                reduced: false,
            });
            let got = eng.par_map(&items, |&x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let eng = Engine::new(EngineConfig::default());
        assert_eq!(eng.par_map(&[] as &[usize], |&x| x), Vec::<usize>::new());
        assert_eq!(eng.par_map(&[7usize], |&x| x + 1), vec![8]);
    }

    #[test]
    fn profile_cache_hits_and_counts() {
        let eng = Engine::new(EngineConfig::serial());
        let key = ProfileKey::Gemm {
            n: 64,
            tile: 16,
            threads: 4,
            cores: 4,
        };
        let a = eng.profile(key, || probe_profile(64));
        let b = eng.profile(key, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(eng.cache_counters(), (1, 1));
        assert_eq!(eng.cache_len(), 1);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            cache_enabled: false,
            reduced: false,
        });
        let key = ProfileKey::Stream {
            n: 1024,
            unroll: 4,
            threads: 4,
        };
        let calls = AtomicU64::new(0);
        for _ in 0..3 {
            let _ = eng.profile(key, || {
                calls.fetch_add(1, Ordering::Relaxed);
                probe_profile(1024)
            });
        }
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(eng.cache_counters(), (0, 0));
        assert_eq!(eng.cache_len(), 0);
    }

    #[test]
    fn run_stage_records_points_and_cache_delta() {
        let eng = Engine::new(EngineConfig::serial());
        let out = eng.run_stage("probe", |e| {
            let v: Vec<_> = (0..5)
                .map(|i| {
                    e.profile(
                        ProfileKey::Gemm {
                            n: 32,
                            tile: 8,
                            threads: 1,
                            cores: 1,
                        },
                        || probe_profile(32 + i),
                    )
                })
                .collect();
            let n = v.len();
            (v, n)
        });
        assert_eq!(out.len(), 5);
        let stages = eng.stages();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].label, "probe");
        assert_eq!(stages[0].points, 5);
        assert_eq!(stages[0].cache_misses, 1);
        assert_eq!(stages[0].cache_hits, 4);
    }

    #[test]
    fn parallel_cache_converges_to_one_entry_per_key() {
        let eng = Engine::new(EngineConfig {
            threads: 8,
            cache_enabled: true,
            reduced: false,
        });
        let items: Vec<usize> = (0..200).collect();
        let profs = eng.par_map(&items, |&i| {
            eng.profile(
                ProfileKey::Fft3d {
                    n: i % 4,
                    threads: 1,
                    cores: 1,
                },
                || probe_profile(i % 4 + 1),
            )
        });
        assert_eq!(eng.cache_len(), 4);
        let (h, m) = eng.cache_counters();
        assert_eq!(h + m, 200);
        // Every result for the same key is the same memoized profile.
        for (i, p) in profs.iter().enumerate() {
            assert_eq!(p.footprint, profs[i % 4].footprint);
        }
    }
}
