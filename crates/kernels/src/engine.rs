//! The shared sweep-execution engine.
//!
//! Every figure/table pipeline in this repository reduces to the same
//! shape: evaluate the performance model over a grid of sweep points,
//! where each point first derives an [`AccessProfile`] (pure function of
//! kernel + problem parameters) and then evaluates it under one OPM
//! configuration. This module factors that shape out once:
//!
//! * **Parallel work queue** — [`Engine::par_map`] dispatches grid points
//!   to a pool of `std::thread::scope` workers through an atomic index.
//!   Results are tagged with their point index and merged in sorted order,
//!   so a run with any thread count produces *byte-identical* output to a
//!   serial run.
//! * **Panic isolation** — every point evaluation runs inside
//!   `catch_unwind`. [`Engine::par_map_isolated`] substitutes a
//!   caller-supplied placeholder (NaN rows, in the figure sweeps) for a
//!   failed point and records a [`PointFailure`] instead of killing the
//!   worker pool; [`Engine::par_map`] keeps the strict contract but
//!   propagates a *structured* panic after the surviving workers have
//!   drained the queue. Failures classified as transient (injected
//!   faults, I/O errors) are retried with bounded deterministic backoff
//!   before they are quarantined.
//! * **Profile memoization** — [`Engine::profile`] caches computed access
//!   profiles under a [`ProfileKey`]. Profiles do not depend on the OPM
//!   configuration, so one computation is reused across eDRAM on/off and
//!   all four MCDRAM modes (and across every figure sweeping the same
//!   grid). Lock poisoning is always recovered ([`lock_recover`]): the
//!   caches hold plain data whose invariants hold between operations, so
//!   a panic elsewhere must not wedge every later stage.
//! * **Observability** — [`Engine::run_stage`] wraps each sweep with wall
//!   time, point count, and cache hit/miss deltas, accumulated as
//!   [`StageRecord`]s for the run-manifest emitted by `opm-bench`; an
//!   optional [`StageJournal`] receives periodic completed-point-range
//!   flushes for the checkpoint/resume machinery.
//!
//! The process-wide instance ([`Engine::global`]) is configured from the
//! environment: `OPM_THREADS` (worker count, default = available
//! parallelism), `OPM_PROFILE_CACHE` (`0`/`off`/`false` disables
//! memoization), `OPM_REDUCED` (`1`/`on`/`true` selects the reduced
//! harness grids in `opm-bench`), `OPM_MAX_RETRIES` (transient-failure
//! retry budget, default 2), `OPM_CKPT_EVERY` (points between checkpoint
//! progress flushes, default 64), and `OPM_FAULT_SPEC` (deterministic
//! fault injection; see [`crate::faultinject`]).

use crate::faultinject::{FaultKind, FaultPlan, InjectedFault};
use opm_core::perf::{EvalPlan, ProfilePlan};
use opm_core::profile::{AccessProfile, ProfileKey};
use opm_core::roofline::Attribution;
use opm_core::telemetry::{Counter, Telemetry, TelemetryMode};
use std::any::Any;
use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Acquire a mutex, recovering the guard if a previous holder panicked.
///
/// Every lock in the engine protects plain data (a memo cache, an
/// append-only log) whose invariants hold between operations, so the
/// conservative default of propagating poison would only convert one
/// already-recorded failure into a cascade that wedges every later
/// stage.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Set while this thread is inside isolated point evaluation, where
    /// panics are caught and recorded rather than reported by the hook.
    static SUPPRESS_PANIC_HOOK: Cell<bool> = const { Cell::new(false) };
}

/// Chain a panic hook (once per process) that stays silent for panics
/// caught by [`Engine::eval_point`] and delegates everything else to the
/// previously installed hook, so panics outside the engine still print
/// normally.
fn install_quiet_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_HOOK.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// RAII scope for hook suppression; restores the outer state on drop so
/// nested isolation (or a panic escaping through user code that itself
/// calls the engine) behaves.
struct QuietPanicGuard {
    prev: bool,
}

impl QuietPanicGuard {
    fn new() -> Self {
        install_quiet_panic_hook();
        let prev = SUPPRESS_PANIC_HOOK.with(|s| s.replace(true));
        QuietPanicGuard { prev }
    }
}

impl Drop for QuietPanicGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        SUPPRESS_PANIC_HOOK.with(|s| s.set(prev));
    }
}

/// Engine tuning knobs, normally read from the environment once per
/// process.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for [`Engine::par_map`] (1 = serial).
    pub threads: usize,
    /// Whether [`Engine::profile`] memoizes computed profiles.
    pub cache_enabled: bool,
    /// Whether harness binaries should use reduced sweep grids.
    pub reduced: bool,
    /// Retry budget for transient point failures (0 = no retries).
    pub max_retries: usize,
    /// Base of the deterministic exponential retry backoff, in
    /// microseconds (attempt `k` sleeps `base << k`, capped at 10 ms;
    /// 0 disables sleeping entirely).
    pub backoff_base_us: u64,
    /// Completed-point interval between [`StageJournal::progress`]
    /// flushes.
    pub checkpoint_every: usize,
    /// Shard count of the profile cache (rounded up to a power of two,
    /// minimum 1). More shards means less lock contention between
    /// concurrent workers missing on different keys.
    pub cache_shards: usize,
    /// Bound on memoized profiles across all shards (`None` =
    /// unbounded, the sweep-campaign default — a campaign's key set is
    /// finite and reuse is the whole point). Long-running serving
    /// processes (`opm serve`) set a bound; the cache then evicts the
    /// least-recently-used entry of the inserting shard. In-flight
    /// (pending) computations never count against the bound and are
    /// never evicted.
    pub cache_capacity: Option<usize>,
    /// Deterministic fault-injection plan (tests, CI smoke runs).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Telemetry instance the engine reports into (`None` = the
    /// process-wide [`Telemetry::global`], configured by
    /// `OPM_TELEMETRY`). Tests attach a private instance to observe one
    /// engine in isolation.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl EngineConfig {
    /// Read `OPM_THREADS` / `OPM_PROFILE_CACHE` / `OPM_REDUCED` /
    /// `OPM_MAX_RETRIES` / `OPM_CKPT_EVERY` / `OPM_CACHE_SHARDS` /
    /// `OPM_CACHE_CAP` / `OPM_FAULT_SPEC` through the typed
    /// [`opm_core::config::Config`]; a malformed value stops the
    /// process with the variable named instead of silently selecting a
    /// default.
    pub fn from_env() -> Self {
        Self::from_config(&opm_core::config::Config::from_env_or_die())
    }

    /// Engine settings from a parsed process configuration (the `opm`
    /// CLI parses once at startup and passes the struct down).
    pub fn from_config(cfg: &opm_core::config::Config) -> Self {
        EngineConfig {
            threads: cfg.threads.unwrap_or_else(default_threads),
            cache_enabled: cfg.profile_cache,
            reduced: cfg.reduced,
            max_retries: cfg.max_retries,
            backoff_base_us: 50,
            checkpoint_every: cfg.checkpoint_every.max(1),
            cache_shards: cfg.cache_shards,
            cache_capacity: cfg.cache_capacity,
            fault_plan: FaultPlan::from_config(cfg).map(Arc::new),
            telemetry: None,
        }
    }

    /// Serial, cache-enabled, full-grid config (useful as a baseline in
    /// determinism tests).
    pub fn serial() -> Self {
        EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        }
    }

    /// This config with a fault-injection plan attached (tests).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// This config reporting into an explicit telemetry instance
    /// instead of the process-wide one.
    pub fn with_telemetry(mut self, tele: Arc<Telemetry>) -> Self {
        self.telemetry = Some(tele);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: default_threads(),
            cache_enabled: true,
            reduced: false,
            max_retries: 2,
            backoff_base_us: 50,
            checkpoint_every: 64,
            cache_shards: DEFAULT_CACHE_SHARDS,
            cache_capacity: None,
            fault_plan: None,
            telemetry: None,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Lifetime profile-cache counters of one engine, with the derived
/// ratios every consumer was previously recomputing from a bare
/// `(u64, u64)` tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Profile lookups served from the memo cache.
    pub hits: u64,
    /// Profile lookups that computed a fresh profile.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Counter delta between two snapshots of the same engine (`self`
    /// taken after `earlier`).
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// Timing/counter record of one completed sweep stage.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Stage label, e.g. `gemm_sweep/knl-flat`.
    pub label: String,
    /// Sweep points evaluated by the stage.
    pub points: usize,
    /// Wall-clock time of the stage.
    pub wall_ns: u128,
    /// Profile-cache hits attributed to the stage.
    pub cache_hits: u64,
    /// Profile-cache misses attributed to the stage.
    pub cache_misses: u64,
}

impl StageRecord {
    /// Wall time in seconds.
    pub fn wall_secs(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }

    /// Evaluated points per second (0 for an instantaneous stage).
    pub fn points_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.points as f64 / self.wall_secs()
        }
    }
}

/// Record of one failed (or retried-and-recovered) sweep-point
/// evaluation; accumulated on the engine and written to
/// `results/run_errors.csv` by `opm-bench`.
#[derive(Debug, Clone)]
pub struct PointFailure {
    /// Stage label the point belonged to.
    pub stage: String,
    /// Point index within the stage (`usize::MAX` for failures not
    /// attributable to a single point, e.g. a crashed worker).
    pub index: usize,
    /// Failure classification.
    pub kind: FaultKind,
    /// Total evaluation attempts made (1 = no retries).
    pub attempts: usize,
    /// Whether the failure was classified transient (and therefore
    /// retried).
    pub transient: bool,
    /// Whether a retry eventually produced a real result. When false the
    /// point's output is a placeholder and the point counts as
    /// quarantined.
    pub recovered: bool,
    /// Human-readable payload/cause.
    pub message: String,
}

impl PointFailure {
    /// Manifest outcome label: `recovered` or `quarantined`.
    pub fn outcome(&self) -> &'static str {
        if self.recovered {
            "recovered"
        } else {
            "quarantined"
        }
    }
}

/// Sink for checkpoint/progress events emitted while stages run. The
/// `opm-bench` checkpoint journal implements this to flush completed
/// point ranges to `results/.checkpoint/<figure>.ckpt`.
pub trait StageJournal: Send + Sync {
    /// `completed` of `total` points of `stage` have finished (flushed
    /// every [`EngineConfig::checkpoint_every`] points and once at stage
    /// end).
    fn progress(&self, _stage: &str, _completed: usize, _total: usize) {}
    /// A stage finished and its record was appended to the stage log.
    fn stage_done(&self, _record: &StageRecord) {}
}

/// Classify a caught panic payload: injected faults are transient
/// (retryable), organic panics are not — deterministic code that panicked
/// once will panic again.
fn classify_payload(payload: &(dyn Any + Send)) -> (FaultKind, bool, String) {
    if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        (f.kind, true, f.to_string())
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (FaultKind::Panic, false, (*s).to_string())
    } else if let Some(s) = payload.downcast_ref::<String>() {
        (FaultKind::Panic, false, s.clone())
    } else {
        (
            FaultKind::Panic,
            false,
            "non-string panic payload".to_string(),
        )
    }
}

/// Telemetry counter handles the engine bumps on its hot paths,
/// resolved once at construction so per-point work stays a relaxed
/// atomic add.
struct EngineCounters {
    points: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    retries: Counter,
    recovered: Counter,
    quarantined: Counter,
    stages: Counter,
}

impl EngineCounters {
    fn resolve(tele: &Telemetry) -> Self {
        EngineCounters {
            points: tele.counter("opm_points_total"),
            cache_hits: tele.counter("opm_profile_cache_hits_total"),
            cache_misses: tele.counter("opm_profile_cache_misses_total"),
            retries: tele.counter("opm_point_retries_total"),
            recovered: tele.counter("opm_points_recovered_total"),
            quarantined: tele.counter("opm_points_quarantined_total"),
            stages: tele.counter("opm_stages_total"),
        }
    }
}

/// Default shard count of the profile cache (16 shards keep the odds of
/// two of 8–64 workers colliding on one lock low while the whole shard
/// array still fits two cache lines of mutex headers). The value lives
/// in [`opm_core::config`] with the rest of the knob defaults.
pub use opm_core::config::DEFAULT_CACHE_SHARDS;

/// A memoized access profile together with its folded evaluation plan.
///
/// The plan ([`ProfilePlan`]) is configuration-independent, so one fold is
/// reused across eDRAM on/off and all four MCDRAM modes exactly like the
/// profile itself; sweeps pair it with a per-configuration
/// [`opm_core::perf::EvalPlan`] to evaluate points without re-walking the
/// tier vectors.
///
/// Profile and plan share one allocation: the cache's cold-miss path pays
/// a single `Arc::new`, a clone is one refcount bump, and a cache slot is
/// pointer-sized. Dereferences to the profile, so existing
/// `AccessProfile` call sites read fields and pass `&pp` unchanged.
#[derive(Clone)]
pub struct PlannedProfile {
    inner: Arc<PlannedInner>,
}

struct PlannedInner {
    profile: AccessProfile,
    plan: ProfilePlan,
}

impl PlannedProfile {
    fn compute(compute: impl FnOnce() -> AccessProfile) -> Self {
        let profile = compute();
        let plan = ProfilePlan::new(&profile)
            .unwrap_or_else(|e| panic!("invalid profile for {}: {e}", profile.kernel));
        PlannedProfile {
            inner: Arc::new(PlannedInner { profile, plan }),
        }
    }

    /// The computed access profile.
    pub fn profile(&self) -> &AccessProfile {
        &self.inner.profile
    }

    /// Its folded evaluation plan.
    pub fn plan(&self) -> &ProfilePlan {
        &self.inner.plan
    }

    /// Whether two handles share the one memoized allocation (the
    /// contention proptest pins that every caller of a coalesced compute
    /// receives the same memoized value, not an equal copy).
    pub fn ptr_eq(&self, other: &PlannedProfile) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::ops::Deref for PlannedProfile {
    type Target = AccessProfile;

    fn deref(&self) -> &AccessProfile {
        &self.inner.profile
    }
}

/// State of one in-flight profile computation, shared between the
/// computing caller and any coalesced waiters.
enum InFlight {
    /// The first caller is still running `compute`.
    Computing,
    /// The computation finished; every waiter receives this value.
    Done(PlannedProfile),
    /// The computing caller panicked; waiters must retry from scratch
    /// (one of them becomes the new computer).
    Abandoned,
}

/// The condvar pair coalesced waiters block on. Allocated *lazily* by
/// the first waiter, not by the computing caller: the common cold-sweep
/// case (every key missed exactly once, no concurrent lookups of the
/// same key) then pays neither the allocation nor the `notify_all`
/// futex wake on its miss path.
type FlightPair = Arc<(Mutex<InFlight>, Condvar)>;

/// One pending-entry slot in a cache shard.
enum Slot {
    /// Memoized profile, served lock-free of any compute. `stamp` is
    /// the cache-global LRU tick of the last lookup that served it
    /// (only consulted when a capacity bound is set).
    Ready {
        /// The memoized value.
        profile: PlannedProfile,
        /// Last-use tick for LRU eviction.
        stamp: u64,
    },
    /// A computation for this key is in flight; arrivals coalesce onto
    /// it instead of duplicating the work. `None` until the first
    /// waiter installs the [`FlightPair`] it wants to block on.
    Pending(Option<FlightPair>),
}

/// Deterministic multiply-rotate hasher (FxHash-style) used both for
/// shard selection and inside the shard `HashMap`s, replacing the two
/// independent SipHash passes a `DefaultHasher` + default map hasher
/// would cost per lookup. `ProfileKey` is a small fixed enum of
/// integers, far from adversarial input, so DoS-resistant hashing buys
/// nothing on this path.
#[derive(Default)]
struct FastHasher(u64);

impl FastHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` for [`FastHasher`] (fixed seed — placement is
/// deterministic across runs and processes).
#[derive(Clone, Default)]
struct FastBuild;

impl std::hash::BuildHasher for FastBuild {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

type ShardMap = HashMap<ProfileKey, Slot, FastBuild>;

/// N-way sharded, compute-coalescing profile cache.
///
/// Keys are distributed over `shards` independent `Mutex<HashMap>`s by
/// key hash, so concurrent workers touching different keys almost never
/// contend on a lock. A miss installs a [`Slot::Pending`] marker and
/// computes *outside* the shard lock; concurrent lookups of the same key
/// block on the marker's condvar and receive the one computed value —
/// `compute` runs at most once per key, at every thread count.
///
/// Counter semantics (pinned by the engine tests and the contention
/// proptest): every lookup increments exactly one of hits/misses — the
/// caller that runs `compute` counts a miss, a caller served a memoized
/// or coalesced value counts a hit. A panicking `compute` counts as the
/// miss it started and wakes its waiters to retry.
struct ShardedCache {
    shards: Box<[Mutex<ShardMap>]>,
    mask: usize,
    /// Monotonic LRU clock; bumped on every hit and publish. Relaxed —
    /// eviction order only needs to roughly track recency, never to
    /// order across threads.
    tick: AtomicU64,
    /// Per-shard bound on `Ready` entries (`None` = unbounded).
    shard_cap: Option<usize>,
}

impl ShardedCache {
    /// Initial per-shard capacity. A cold sweep inserts tens of keys per
    /// shard back to back; pre-sizing keeps the miss path free of the
    /// incremental grow-and-rehash steps a default-capacity map would
    /// take right in the measured loop.
    const SHARD_CAPACITY: usize = 64;

    fn new(shards: usize, capacity: Option<usize>) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(ShardMap::with_capacity_and_hasher(
                        Self::SHARD_CAPACITY,
                        FastBuild,
                    ))
                })
                .collect(),
            mask: n - 1,
            tick: AtomicU64::new(0),
            // Ceil-divide the global bound across shards, at least one
            // entry each, so the configured total is honored however
            // keys hash.
            shard_cap: capacity.map(|c| (c.div_ceil(n)).max(1)),
        }
    }

    /// Next LRU stamp.
    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Evict least-recently-used `Ready` entries of one shard until it
    /// is back under its capacity share. Pending markers are never
    /// evicted (waiters hold the condvar pair) and never counted. The
    /// linear min-scan is fine here: eviction only happens on a miss,
    /// which just paid a full profile computation — orders of magnitude
    /// above an O(shard) walk.
    fn enforce_cap(&self, map: &mut ShardMap) {
        let Some(cap) = self.shard_cap else { return };
        loop {
            let ready = map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            if ready <= cap {
                return;
            }
            let victim = map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { stamp, .. } => Some((*stamp, *k)),
                    Slot::Pending(_) => None,
                })
                .min_by_key(|(stamp, _)| *stamp)
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                }
                None => return,
            }
        }
    }

    fn shard(&self, key: &ProfileKey) -> &Mutex<ShardMap> {
        // One FastHasher pass; bits 32.. select the shard so the map's
        // own bucket index (low bits of the same hash) stays uncorrelated
        // with shard placement. Placement is deterministic (not that
        // determinism depends on it — every shard holds the same
        // (key, profile) pairs a single map would).
        let mut h = FastHasher::default();
        key.hash(&mut h);
        &self.shards[((h.finish() >> 32) as usize) & self.mask]
    }

    /// Memoized entries (in-flight computations are not counted).
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock_recover(s)
                    .values()
                    .filter(|v| matches!(v, Slot::Ready { .. }))
                    .count()
            })
            .sum()
    }

    fn clear(&self) {
        for s in &self.shards {
            lock_recover(s).retain(|_, v| matches!(v, Slot::Pending(_)));
        }
    }
}

/// Removes the pending marker and wakes waiters if `compute` unwinds, so
/// a panicking profile constructor can never wedge coalesced callers.
///
/// While the computer runs, the slot for `key` is always *its* pending
/// entry (only waiters touch it, and only to install a [`FlightPair`]),
/// so the guard may remove unconditionally on unwind.
struct PendingGuard<'a> {
    shard: &'a Mutex<ShardMap>,
    key: ProfileKey,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let removed = lock_recover(self.shard).remove(&self.key);
        if let Some(Slot::Pending(Some(flight))) = removed {
            *lock_recover(&flight.0) = InFlight::Abandoned;
            flight.1.notify_all();
        }
    }
}

/// The sweep-execution engine: a worker pool plus the memoized profile
/// cache, the stage log, and the point-failure log. See the module docs
/// for the design.
pub struct Engine {
    config: EngineConfig,
    cache: ShardedCache,
    hits: AtomicU64,
    misses: AtomicU64,
    stages: Mutex<Vec<StageRecord>>,
    failures: Mutex<Vec<PointFailure>>,
    current_stage: Mutex<Option<String>>,
    /// Span path of the currently-open stage span (parent for per-point
    /// spans opened on worker threads).
    current_stage_path: Mutex<Option<String>>,
    journal: Mutex<Option<Arc<dyn StageJournal>>>,
    tele: Arc<Telemetry>,
    counters: EngineCounters,
}

impl Engine {
    /// Engine with an explicit configuration (tests, determinism checks).
    pub fn new(config: EngineConfig) -> Self {
        let tele = config
            .telemetry
            .clone()
            .unwrap_or_else(|| Telemetry::global().clone());
        let counters = EngineCounters::resolve(&tele);
        let cache = ShardedCache::new(config.cache_shards, config.cache_capacity);
        Engine {
            config,
            cache,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stages: Mutex::new(Vec::new()),
            failures: Mutex::new(Vec::new()),
            current_stage: Mutex::new(None),
            current_stage_path: Mutex::new(None),
            journal: Mutex::new(None),
            tele,
            counters,
        }
    }

    /// Engine configured from the environment.
    pub fn from_env() -> Self {
        Engine::new(EngineConfig::from_env())
    }

    /// The process-wide engine, created from the environment on first use.
    /// Set `OPM_THREADS` / `OPM_PROFILE_CACHE` / `OPM_REDUCED` /
    /// `OPM_FAULT_SPEC` before the first sweep to take effect.
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(Engine::from_env)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The telemetry instance this engine reports into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.tele
    }

    /// Install (or clear) the checkpoint journal receiving stage
    /// progress/completion events.
    pub fn set_journal(&self, journal: Option<Arc<dyn StageJournal>>) {
        *lock_recover(&self.journal) = journal;
    }

    /// Look up (or compute and memoize) the access profile for `key`,
    /// returned with its folded evaluation plan ([`PlannedProfile`] —
    /// the plan is computed once per key and shared across every
    /// configuration sweeping the same grid).
    ///
    /// `compute` must be the pure profile constructor matching `key`; it
    /// runs at most once per key while the cache is enabled — concurrent
    /// lookups of a key whose computation is in flight coalesce onto it
    /// instead of duplicating the work (see [`ShardedCache`]). With the
    /// cache disabled every call computes afresh, which is what the
    /// determinism tests compare against.
    pub fn profile(
        &self,
        key: ProfileKey,
        compute: impl FnOnce() -> AccessProfile,
    ) -> PlannedProfile {
        if !self.config.cache_enabled {
            return PlannedProfile::compute(compute);
        }
        let shard = self.cache.shard(&key);
        loop {
            let flight = {
                let mut map = lock_recover(shard);
                // One hash-and-probe covers hit, coalesce, and
                // pending-marker install (the miss path's only other map
                // op is publishing the Ready slot after compute).
                match map.entry(key) {
                    Entry::Occupied(mut occ) => match occ.get_mut() {
                        Slot::Ready { profile, stamp } => {
                            *stamp = self.cache.next_tick();
                            let p = profile.clone();
                            drop(map);
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            self.counters.cache_hits.inc();
                            return p;
                        }
                        // First waiter on this computation installs the
                        // pair everyone (computer included) synchronizes
                        // through; later waiters share it.
                        Slot::Pending(opt) => match opt {
                            Some(f) => f.clone(),
                            None => {
                                let f: FlightPair =
                                    Arc::new((Mutex::new(InFlight::Computing), Condvar::new()));
                                *opt = Some(f.clone());
                                f
                            }
                        },
                    },
                    Entry::Vacant(vac) => {
                        vac.insert(Slot::Pending(None));
                        drop(map);
                        // This caller owns the computation: count the miss
                        // (even if `compute` unwinds — the work was
                        // started) and run it outside every lock.
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        self.counters.cache_misses.inc();
                        let mut guard = PendingGuard {
                            shard,
                            key,
                            armed: true,
                        };
                        let fresh = PlannedProfile::compute(compute);
                        guard.armed = false;
                        let stamp = self.cache.next_tick();
                        let mut map = lock_recover(shard);
                        let prev = map.insert(
                            key,
                            Slot::Ready {
                                profile: fresh.clone(),
                                stamp,
                            },
                        );
                        self.cache.enforce_cap(&mut map);
                        drop(map);
                        // Only wake (and only then pay the futex syscall)
                        // if a waiter actually coalesced while we computed.
                        if let Some(Slot::Pending(Some(flight))) = prev {
                            *lock_recover(&flight.0) = InFlight::Done(fresh.clone());
                            flight.1.notify_all();
                        }
                        return fresh;
                    }
                }
            };
            // Coalesced path: block until the in-flight computation
            // resolves. `Done` serves this lookup (a hit — the profile
            // was not recomputed); `Abandoned` means the computer
            // panicked, so retry from the top (at most one counter
            // increment per lookup, attributed at resolution).
            let mut state = lock_recover(&flight.0);
            loop {
                match &*state {
                    InFlight::Done(p) => {
                        let p = p.clone();
                        drop(state);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.counters.cache_hits.inc();
                        return p;
                    }
                    InFlight::Abandoned => break,
                    InFlight::Computing => {
                        state = flight.1.wait(state).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
    }

    /// Lifetime profile-cache counters of this engine.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Distinct profiles currently memoized (in-flight computations are
    /// not counted).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drop every memoized profile (counters are kept; in-flight
    /// computations complete and re-memoize normally).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Record a point failure (also used by `opm-bench` for
    /// figure-level failures). Retry/recovery telemetry counters are
    /// bumped here so every failure path — engine points and
    /// figure-level catches alike — feeds the same metrics.
    pub fn record_failure(&self, failure: PointFailure) {
        self.counters
            .retries
            .add(failure.attempts.saturating_sub(1) as u64);
        if failure.recovered {
            self.counters.recovered.inc();
        } else {
            self.counters.quarantined.inc();
        }
        lock_recover(&self.failures).push(failure);
    }

    /// Number of failures recorded so far (use with
    /// [`Engine::failures_since`] to attribute failures to a window).
    pub fn failure_count(&self) -> usize {
        lock_recover(&self.failures).len()
    }

    /// Copies of the failure records from index `from` onward.
    pub fn failures_since(&self, from: usize) -> Vec<PointFailure> {
        let failures = lock_recover(&self.failures);
        failures[from.min(failures.len())..].to_vec()
    }

    /// Copies of every recorded point failure.
    pub fn failures(&self) -> Vec<PointFailure> {
        self.failures_since(0)
    }

    /// Drain the failure log, returning every record.
    pub fn take_failures(&self) -> Vec<PointFailure> {
        std::mem::take(&mut *lock_recover(&self.failures))
    }

    /// Deterministic bounded backoff before retry `attempt + 1`:
    /// `backoff_base_us << attempt` microseconds, capped at 10 ms.
    fn backoff(&self, attempt: usize) {
        let base = self.config.backoff_base_us;
        if base == 0 {
            return;
        }
        let us = base
            .checked_shl(attempt.min(16) as u32)
            .unwrap_or(u64::MAX)
            .min(10_000);
        std::thread::sleep(Duration::from_micros(us));
    }

    /// Evaluate one point with panic isolation, fault injection, and
    /// bounded retry. Recovered retries are recorded in the failure log;
    /// exhausted/permanent failures are recorded and returned as `Err`.
    ///
    /// The default panic hook is suppressed while the point runs: a
    /// caught panic becomes a structured [`PointFailure`] row, so the
    /// hook's backtrace would only flood stderr (a 10% injected fault
    /// rate over a full sweep is thousands of panics).
    fn eval_point<T, R>(
        &self,
        stage: &str,
        span_parent: Option<&str>,
        index: usize,
        item: &T,
        f: &(impl Fn(&T) -> R + Sync),
    ) -> Result<R, PointFailure> {
        // One span per point (mode `full` only), covering every retry;
        // dropped on both the Ok and Err paths below.
        let mut span = span_parent.map(|parent| {
            self.tele
                .span_under(parent, "point", &format!("point:{index}"))
        });
        let plan = self.config.fault_plan.as_deref();
        let mut attempt = 0usize;
        let mut last: Option<(FaultKind, String)> = None;
        loop {
            let outcome = {
                let _quiet = QuietPanicGuard::new();
                catch_unwind(AssertUnwindSafe(|| {
                    if let Some(p) = plan {
                        p.fire_point(stage, index, attempt);
                    }
                    f(item)
                }))
            };
            match outcome {
                Ok(v) => {
                    if let Some((kind, message)) = last {
                        if let Some(s) = span.as_mut() {
                            s.arg("attempts", attempt + 1);
                            s.arg("outcome", "recovered");
                        }
                        self.record_failure(PointFailure {
                            stage: stage.to_string(),
                            index,
                            kind,
                            attempts: attempt + 1,
                            transient: true,
                            recovered: true,
                            message,
                        });
                    }
                    return Ok(v);
                }
                Err(payload) => {
                    let (kind, transient, message) = classify_payload(payload.as_ref());
                    if transient && attempt < self.config.max_retries {
                        last = Some((kind, message));
                        self.backoff(attempt);
                        attempt += 1;
                        continue;
                    }
                    if let Some(s) = span.as_mut() {
                        s.arg("attempts", attempt + 1);
                        s.arg("outcome", "quarantined");
                    }
                    let failure = PointFailure {
                        stage: stage.to_string(),
                        index,
                        kind,
                        attempts: attempt + 1,
                        transient,
                        recovered: false,
                        message,
                    };
                    self.record_failure(failure.clone());
                    return Err(failure);
                }
            }
        }
    }

    /// Core parallel runner: map every item through [`Engine::eval_point`]
    /// on the worker pool, preserving input order, flushing progress to
    /// the journal, and never letting one point's failure take down the
    /// pool. A worker that somehow dies outside point isolation is
    /// recorded and the survivors drain the queue.
    fn par_run<T, R, F>(&self, stage: &str, items: &[T], f: F) -> Vec<Result<R, PointFailure>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let journal = lock_recover(&self.journal).clone();
        let every = self.config.checkpoint_every.max(1);
        let total = items.len();
        let done = AtomicUsize::new(0);
        let tick = |journal: &Option<Arc<dyn StageJournal>>| {
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            if d.is_multiple_of(every) || d == total {
                if let Some(j) = journal {
                    j.progress(stage, d, total);
                }
                if self.tele.enabled() {
                    self.tele.instant(
                        "progress",
                        &[
                            ("stage".to_string(), stage.to_string()),
                            ("completed".to_string(), d.to_string()),
                            ("total".to_string(), total.to_string()),
                        ],
                    );
                }
            }
        };
        // Per-point spans only in `full` mode; they attach to the stage
        // span opened by `run_stage` (worker threads never opened it, so
        // the parent path is passed explicitly).
        let span_parent = if self.tele.mode() == TelemetryMode::Full {
            Some(
                lock_recover(&self.current_stage_path)
                    .clone()
                    .unwrap_or_else(|| stage.to_string()),
            )
        } else {
            None
        };
        let span_parent = span_parent.as_deref();
        let threads = self.config.threads.clamp(1, items.len().max(1));
        if threads == 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let r = self.eval_point(stage, span_parent, i, item, &f);
                    tick(&journal);
                    r
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, Result<R, PointFailure>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        // Every point lands in exactly one worker's bucket;
                        // sizing for an even split avoids regrowth churn on
                        // large sweeps (stragglers overflow at most once).
                        let mut out = Vec::with_capacity(items.len() / threads + 1);
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, self.eval_point(stage, span_parent, i, &items[i], &f)));
                            tick(&journal);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(part) => Some(part),
                    // A worker died outside per-point isolation (engine
                    // bug or allocator abort path). Record it; the other
                    // workers have already drained the queue.
                    Err(_) => {
                        self.record_failure(PointFailure {
                            stage: stage.to_string(),
                            index: usize::MAX,
                            kind: FaultKind::Panic,
                            attempts: 1,
                            transient: false,
                            recovered: false,
                            message: "engine worker crashed outside point isolation".to_string(),
                        });
                        None
                    }
                })
                .collect()
        });
        let mut slots: Vec<Option<Result<R, PointFailure>>> =
            (0..items.len()).map(|_| None).collect();
        for (i, r) in parts.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    let failure = PointFailure {
                        stage: stage.to_string(),
                        index: i,
                        kind: FaultKind::Panic,
                        attempts: 1,
                        transient: false,
                        recovered: false,
                        message: "result lost to a crashed worker".to_string(),
                    };
                    self.record_failure(failure.clone());
                    Err(failure)
                })
            })
            .collect()
    }

    /// Map `f` over `items` on the worker pool, preserving input order.
    ///
    /// Points are handed out through an atomic index (dynamic load
    /// balancing — grid points vary widely in cost), each worker tags its
    /// results with the point index, and the merged output is sorted by
    /// that index. The result is therefore identical — element for
    /// element — for every thread count, including 1.
    ///
    /// This is the *strict* variant: a point that still fails after the
    /// transient-retry budget propagates a structured panic naming the
    /// stage, point, and cause — but only after the surviving workers
    /// have drained the queue, and with every failure recorded in the
    /// failure log. Sweeps that prefer NaN placeholder rows over a panic
    /// use [`Engine::par_map_isolated`].
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let stage = lock_recover(&self.current_stage)
            .clone()
            .unwrap_or_else(|| "adhoc".to_string());
        let mut out = Vec::with_capacity(items.len());
        let mut first_err: Option<PointFailure> = None;
        for r in self.par_run(&stage, items, f) {
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            panic!(
                "sweep stage {:?}: point {} failed after {} attempt(s): {}",
                e.stage, e.index, e.attempts, e.message
            );
        }
        out
    }

    /// Map `f` over `items` with full panic isolation: a point that still
    /// fails after the retry budget yields `placeholder(item, index)`
    /// instead of panicking, and the failure is recorded for the
    /// `run_errors.csv` manifest. Output order and length always match
    /// `items`, at every thread count.
    pub fn par_map_isolated<T, R, F, P>(
        &self,
        stage: &str,
        items: &[T],
        f: F,
        placeholder: P,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
        P: Fn(&T, usize) -> R,
    {
        self.par_run(stage, items, f)
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|_| placeholder(&items[i], i)))
            .collect()
    }

    /// Run `f` as a named stage, recording wall time, its reported point
    /// count, and the cache hit/miss delta. Stages are assumed to run
    /// sequentially (parallelism lives *inside* a stage, in
    /// [`Engine::par_map`]); overlapping stages would attribute each
    /// other's cache traffic.
    pub fn run_stage<R>(&self, label: &str, f: impl FnOnce(&Engine) -> (R, usize)) -> R {
        struct StageGuard<'a>(&'a Engine);
        impl Drop for StageGuard<'_> {
            fn drop(&mut self) {
                *lock_recover(&self.0.current_stage) = None;
                *lock_recover(&self.0.current_stage_path) = None;
            }
        }
        // The span outlives the guard (declared first, dropped last), so
        // its end event carries the final stage args even when `f`
        // unwinds.
        let mut span = self.tele.span("stage", label);
        *lock_recover(&self.current_stage) = Some(label.to_string());
        *lock_recover(&self.current_stage_path) = if span.path().is_empty() {
            None
        } else {
            Some(span.path().to_string())
        };
        let _guard = StageGuard(self);
        let before = self.cache_stats();
        let start = Instant::now();
        let (out, points) = f(self);
        let wall_ns = start.elapsed().as_nanos();
        let delta = self.cache_stats().since(before);
        let record = StageRecord {
            label: label.to_string(),
            points,
            wall_ns,
            cache_hits: delta.hits,
            cache_misses: delta.misses,
        };
        self.counters.points.add(points as u64);
        self.counters.stages.inc();
        span.arg("points", points);
        span.arg("cache_hits", delta.hits);
        span.arg("cache_misses", delta.misses);
        lock_recover(&self.stages).push(record.clone());
        if let Some(journal) = lock_recover(&self.journal).clone() {
            journal.stage_done(&record);
        }
        out
    }

    /// Evaluate one sweep point under `plan`, recording the
    /// second-generation observability when telemetry is enabled:
    ///
    /// * the modeled point latency (`est.time_ns` — a deterministic
    ///   model output, never wall clock, so histograms are byte-identical
    ///   across threads and shards) into the per-stage
    ///   `opm_point_latency_ns` histogram, and
    /// * the point's roofline [`Attribution`] — per-level achieved GB/s,
    ///   arithmetic intensity, ceiling fraction, Eq. 1 break-even
    ///   margin. Labeled milli gauges are emitted only when the caller
    ///   passes a `point` label (the small curve families); dense grids
    ///   report the full signed detail as a `roofline` instant in full
    ///   mode, keeping the metrics.prom cardinality bounded.
    ///
    /// Returns the modeled GFlop/s — bit-identical to
    /// `plan.gflops_planned(pp)` (the accumulation order is shared; see
    /// [`EvalPlan::gflops_planned`]), so golden figure CSVs do not
    /// depend on the telemetry mode.
    pub fn observe_point(&self, plan: &EvalPlan<'_>, pp: &ProfilePlan, point: Option<&str>) -> f64 {
        if !self.tele.enabled() {
            return plan.gflops_planned(pp);
        }
        let est = plan.evaluate_planned(pp);
        let stage = lock_recover(&self.current_stage_path)
            .clone()
            .or_else(|| lock_recover(&self.current_stage).clone())
            .unwrap_or_else(|| "unknown".to_string());
        self.tele.observe(
            "opm_point_latency_ns",
            &format!("stage=\"{stage}\""),
            est.time_ns as u64,
        );
        let attr = Attribution::from_planned(plan, pp, &est);
        // Signed/fractional quantities ride in milli units offset so the
        // u64 exposition stays lossless for merge tooling: the gain and
        // break-even gauges carry `round((1 + x) * 1000)`; their
        // difference is the margin.
        let milli = |x: f64| (x * 1000.0).round().max(0.0) as u64;
        if let Some(point) = point {
            let labels = format!("stage=\"{stage}\",point=\"{point}\"");
            self.tele
                .set_gauge("opm_roofline_ai_milli", &labels, milli(attr.ai));
            self.tele.set_gauge(
                "opm_roofline_ceiling_frac_milli",
                &labels,
                milli(attr.ceiling_frac),
            );
            self.tele
                .set_gauge("opm_roofline_gain_milli", &labels, milli(1.0 + attr.gain));
            self.tele.set_gauge(
                "opm_roofline_breakeven_milli",
                &labels,
                milli(1.0 + attr.breakeven),
            );
            for (level, gbs) in &attr.levels {
                self.tele.set_gauge(
                    "opm_roofline_level_gbs_milli",
                    &format!("{labels},level=\"{level}\""),
                    milli(*gbs),
                );
            }
        }
        if self.tele.mode() == TelemetryMode::Full {
            let mut args = vec![
                ("stage".to_string(), stage),
                ("ai".to_string(), format!("{:.6}", attr.ai)),
                ("gflops".to_string(), format!("{:.6}", attr.gflops)),
                (
                    "ceiling_frac".to_string(),
                    format!("{:.6}", attr.ceiling_frac),
                ),
                ("gain".to_string(), format!("{:.6}", attr.gain)),
                ("margin".to_string(), format!("{:.6}", attr.margin)),
            ];
            if let Some(point) = point {
                args.push(("point".to_string(), point.to_string()));
            }
            for (level, gbs) in &attr.levels {
                args.push((format!("gbs_{level}"), format!("{gbs:.6}")));
            }
            self.tele.instant("roofline", &args);
        }
        est.gflops
    }

    /// Number of stages recorded so far (use with [`Engine::stages_since`]
    /// to attribute stages to a window, e.g. one figure).
    pub fn stage_count(&self) -> usize {
        lock_recover(&self.stages).len()
    }

    /// Copies of the stage records from index `from` onward.
    pub fn stages_since(&self, from: usize) -> Vec<StageRecord> {
        let stages = lock_recover(&self.stages);
        stages[from.min(stages.len())..].to_vec()
    }

    /// Copies of every stage record.
    pub fn stages(&self) -> Vec<StageRecord> {
        self.stages_since(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_core::profile::{Phase, Tier};

    fn probe_profile(n: usize) -> AccessProfile {
        let mut phase = Phase::new("p", n as f64, 8.0 * n as f64);
        phase.tiers.push(Tier::new(8.0 * n as f64, 0.5));
        AccessProfile::single("probe", phase, 8.0 * n as f64)
    }

    fn engine_with(threads: usize) -> Engine {
        Engine::new(EngineConfig {
            threads,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn par_map_is_order_preserving_for_every_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let eng = engine_with(threads);
            let got = eng.par_map(&items, |&x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let eng = Engine::new(EngineConfig::default());
        assert_eq!(eng.par_map(&[] as &[usize], |&x| x), Vec::<usize>::new());
        assert_eq!(eng.par_map(&[7usize], |&x| x + 1), vec![8]);
    }

    #[test]
    fn profile_cache_hits_and_counts() {
        let eng = Engine::new(EngineConfig::serial());
        let key = ProfileKey::Gemm {
            n: 64,
            tile: 16,
            threads: 4,
            cores: 4,
        };
        let a = eng.profile(key, || probe_profile(64));
        let b = eng.profile(key, || panic!("must not recompute"));
        assert!(a.ptr_eq(&b));
        assert_eq!(eng.cache_stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(eng.cache_len(), 1);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            cache_enabled: false,
            ..EngineConfig::default()
        });
        let key = ProfileKey::Stream {
            n: 1024,
            unroll: 4,
            threads: 4,
        };
        let calls = AtomicU64::new(0);
        for _ in 0..3 {
            let _ = eng.profile(key, || {
                calls.fetch_add(1, Ordering::Relaxed);
                probe_profile(1024)
            });
        }
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(eng.cache_stats(), CacheStats::default());
        assert_eq!(eng.cache_len(), 0);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let eng = Engine::new(EngineConfig {
            threads: 1,
            cache_shards: 1,
            cache_capacity: Some(2),
            ..EngineConfig::default()
        });
        let key = |n: usize| ProfileKey::Stream {
            n,
            unroll: 4,
            threads: 1,
        };
        let _ = eng.profile(key(1), || probe_profile(1));
        let _ = eng.profile(key(2), || probe_profile(2));
        // Touch key(1) so key(2) becomes the LRU entry.
        let _ = eng.profile(key(1), || panic!("must not recompute"));
        // Third insert overflows the 2-entry bound and evicts key(2).
        let _ = eng.profile(key(3), || probe_profile(3));
        assert_eq!(eng.cache_len(), 2);
        let _ = eng.profile(key(1), || panic!("key(1) was touched, must stay"));
        let recomputed = AtomicU64::new(0);
        let _ = eng.profile(key(2), || {
            recomputed.fetch_add(1, Ordering::Relaxed);
            probe_profile(2)
        });
        assert_eq!(recomputed.load(Ordering::Relaxed), 1, "LRU entry evicted");
    }

    #[test]
    fn unbounded_cache_keeps_everything() {
        let eng = Engine::new(EngineConfig::serial());
        for n in 0..64 {
            let _ = eng.profile(
                ProfileKey::Stream {
                    n,
                    unroll: 4,
                    threads: 1,
                },
                || probe_profile(n.max(1)),
            );
        }
        assert_eq!(eng.cache_len(), 64);
    }

    #[test]
    fn run_stage_records_points_and_cache_delta() {
        let eng = Engine::new(EngineConfig::serial());
        let out = eng.run_stage("probe", |e| {
            let v: Vec<_> = (0..5)
                .map(|i| {
                    e.profile(
                        ProfileKey::Gemm {
                            n: 32,
                            tile: 8,
                            threads: 1,
                            cores: 1,
                        },
                        || probe_profile(32 + i),
                    )
                })
                .collect();
            let n = v.len();
            (v, n)
        });
        assert_eq!(out.len(), 5);
        let stages = eng.stages();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].label, "probe");
        assert_eq!(stages[0].points, 5);
        assert_eq!(stages[0].cache_misses, 1);
        assert_eq!(stages[0].cache_hits, 4);
    }

    #[test]
    fn parallel_cache_converges_to_one_entry_per_key() {
        let eng = engine_with(8);
        let items: Vec<usize> = (0..200).collect();
        let profs = eng.par_map(&items, |&i| {
            eng.profile(
                ProfileKey::Fft3d {
                    n: i % 4,
                    threads: 1,
                    cores: 1,
                },
                || probe_profile(i % 4 + 1),
            )
        });
        assert_eq!(eng.cache_len(), 4);
        assert_eq!(eng.cache_stats().total(), 200);
        // Every result for the same key is the same memoized profile.
        for (i, p) in profs.iter().enumerate() {
            assert_eq!(p.footprint, profs[i % 4].footprint);
        }
    }

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        let m = Mutex::new(7usize);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 8);
    }

    #[test]
    fn par_map_propagates_a_structured_panic_and_engine_survives() {
        let eng = engine_with(4);
        let items: Vec<usize> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            eng.par_map(&items, |&x| {
                if x == 13 {
                    panic!("organic failure at {x}");
                }
                x
            })
        }));
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().expect("structured message");
        assert!(msg.contains("point 13"), "{msg}");
        assert!(msg.contains("organic failure at 13"), "{msg}");
        // Failure recorded; engine (and its locks) still fully usable.
        let failures = eng.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 13);
        assert!(!failures[0].transient);
        assert_eq!(failures[0].attempts, 1, "organic panics are not retried");
        let ok = eng.par_map(&items, |&x| x + 1);
        assert_eq!(ok.len(), 64);
    }

    #[test]
    fn par_map_isolated_substitutes_placeholders_and_records() {
        for threads in [1, 4, 8] {
            let eng = engine_with(threads);
            let items: Vec<usize> = (0..40).collect();
            let got = eng.par_map_isolated(
                "probe_stage",
                &items,
                |&x| {
                    if x % 10 == 3 {
                        panic!("bad point {x}");
                    }
                    x as i64
                },
                |_, i| -(i as i64),
            );
            let expect: Vec<i64> = (0..40)
                .map(|x| if x % 10 == 3 { -(x as i64) } else { x as i64 })
                .collect();
            assert_eq!(got, expect, "threads={threads}");
            let failures = eng.failures();
            assert_eq!(failures.len(), 4, "threads={threads}");
            let mut failed: Vec<usize> = failures.iter().map(|f| f.index).collect();
            failed.sort_unstable();
            assert_eq!(failed, vec![3, 13, 23, 33]);
            assert!(failures.iter().all(|f| f.stage == "probe_stage"));
            assert!(failures.iter().all(|f| !f.recovered));
        }
    }

    #[test]
    fn transient_injected_faults_are_retried_and_recovered() {
        let plan = FaultPlan::parse("panic@point:5").unwrap();
        let eng = Engine::new(EngineConfig::serial().with_fault_plan(plan));
        let items: Vec<usize> = (0..10).collect();
        let calls = AtomicU64::new(0);
        let got = eng.par_map_isolated(
            "retry_stage",
            &items,
            |&x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x * 2
            },
            |_, _| usize::MAX,
        );
        // The injected fault fired before f ran, was retried, and the
        // retry produced the real value — no placeholder anywhere.
        assert_eq!(got, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        let failures = eng.failures();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].recovered);
        assert!(failures[0].transient);
        assert_eq!(failures[0].index, 5);
        assert_eq!(failures[0].attempts, 2);
    }

    #[test]
    fn persistent_injected_faults_exhaust_retries_and_quarantine() {
        let plan = FaultPlan::parse("io@point:2:persist").unwrap();
        let mut config = EngineConfig::serial().with_fault_plan(plan);
        config.max_retries = 3;
        config.backoff_base_us = 0;
        let eng = Engine::new(config);
        let items: Vec<usize> = (0..4).collect();
        let got = eng.par_map_isolated("q_stage", &items, |&x| x, |_, _| usize::MAX);
        assert_eq!(got, vec![0, 1, usize::MAX, 3]);
        let failures = eng.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].attempts, 4, "1 try + 3 retries");
        assert_eq!(failures[0].kind, FaultKind::Io);
        assert!(!failures[0].recovered);
        assert_eq!(failures[0].outcome(), "quarantined");
    }

    #[test]
    fn journal_receives_progress_and_stage_done() {
        #[derive(Default)]
        struct Probe {
            progress: Mutex<Vec<(usize, usize)>>,
            done: Mutex<Vec<String>>,
        }
        impl StageJournal for Probe {
            fn progress(&self, _stage: &str, completed: usize, total: usize) {
                lock_recover(&self.progress).push((completed, total));
            }
            fn stage_done(&self, record: &StageRecord) {
                lock_recover(&self.done).push(record.label.clone());
            }
        }
        let mut config = EngineConfig::serial();
        config.checkpoint_every = 8;
        let eng = Engine::new(config);
        let probe = Arc::new(Probe::default());
        eng.set_journal(Some(probe.clone()));
        let items: Vec<usize> = (0..20).collect();
        eng.run_stage("journal_stage", |e| {
            let v = e.par_map(&items, |&x| x);
            let n = v.len();
            (v, n)
        });
        let progress = lock_recover(&probe.progress).clone();
        assert_eq!(progress, vec![(8, 20), (16, 20), (20, 20)]);
        assert_eq!(lock_recover(&probe.done).clone(), vec!["journal_stage"]);
        eng.set_journal(None);
    }

    #[test]
    fn coalescing_runs_compute_once_per_key_under_contention() {
        // Many threads hammer the same hot key: the sharded cache must
        // coalesce them onto one computation, with exactly one miss (the
        // computer) and a hit for every other lookup.
        let eng = engine_with(8);
        let items: Vec<usize> = (0..400).collect();
        let calls = AtomicU64::new(0);
        let key = ProfileKey::Stream {
            n: 4096,
            unroll: 8,
            threads: 8,
        };
        let _ = eng.par_map(&items, |_| {
            eng.profile(key, || {
                calls.fetch_add(1, Ordering::Relaxed);
                // Widen the in-flight window so concurrent lookups really
                // do arrive while the computation is running.
                std::thread::sleep(Duration::from_millis(20));
                probe_profile(4096)
            })
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "compute ran once");
        assert_eq!(
            eng.cache_stats(),
            CacheStats {
                hits: 399,
                misses: 1
            }
        );
        assert_eq!(eng.cache_len(), 1);
    }

    #[test]
    fn panicking_compute_wakes_coalesced_waiters_for_retry() {
        // The first computation of a key panics while waiters are
        // coalesced on it: the pending marker must be removed and the
        // waiters retried, so one of them recomputes and everyone gets a
        // value — nobody deadlocks on an abandoned marker.
        let eng = engine_with(4);
        let items: Vec<usize> = (0..16).collect();
        let failed_once = AtomicU64::new(0);
        let key = ProfileKey::Fft3d {
            n: 77,
            threads: 1,
            cores: 1,
        };
        let got = eng.par_map_isolated(
            "poison_probe",
            &items,
            |_| {
                eng.profile(key, || {
                    if failed_once.fetch_add(1, Ordering::Relaxed) == 0 {
                        std::thread::sleep(Duration::from_millis(10));
                        panic!("first compute dies");
                    }
                    probe_profile(77)
                })
                .footprint
            },
            |_, _| f64::NAN,
        );
        // Every point except the one that owned the panicking compute
        // resolves to the real profile.
        assert!(got.iter().filter(|v| v.is_nan()).count() <= 1);
        assert!(got.iter().any(|v| !v.is_nan()));
        let s = eng.cache_stats();
        assert_eq!(s.total(), 16, "each lookup counted exactly once");
        assert_eq!(eng.cache_len(), 1);
    }

    #[test]
    fn cache_shards_knob_is_normalized_and_preserves_behavior() {
        for shards in [1usize, 3, 16, 64] {
            let eng = Engine::new(EngineConfig {
                threads: 4,
                cache_shards: shards,
                ..EngineConfig::default()
            });
            let items: Vec<usize> = (0..64).collect();
            let _ = eng.par_map(&items, |&i| {
                eng.profile(
                    ProfileKey::Fft3d {
                        n: i % 8,
                        threads: 1,
                        cores: 1,
                    },
                    || probe_profile(i % 8 + 1),
                )
            });
            assert_eq!(eng.cache_len(), 8, "shards={shards}");
            assert_eq!(eng.cache_stats().total(), 64, "shards={shards}");
            assert_eq!(eng.cache_stats().misses, 8, "shards={shards}");
        }
    }

    #[test]
    fn cache_stats_ratios_and_delta() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.total(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let later = CacheStats {
            hits: 10,
            misses: 4,
        };
        assert_eq!(later.since(s), CacheStats { hits: 7, misses: 3 });
    }

    #[test]
    fn points_per_sec_is_zero_for_instantaneous_stage() {
        // A fully memoized stage can complete in 0 ns of measured wall
        // time; the rate must degrade to 0.0, never inf/NaN.
        let r = StageRecord {
            label: "memoized".to_string(),
            points: 128,
            wall_ns: 0,
            cache_hits: 128,
            cache_misses: 0,
        };
        assert_eq!(r.wall_secs(), 0.0);
        assert_eq!(r.points_per_sec(), 0.0);
        assert!(r.points_per_sec().is_finite());
        // And stays a plain rate when wall time is real.
        let r2 = StageRecord {
            wall_ns: 2_000_000_000,
            ..r
        };
        assert!((r2.points_per_sec() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn run_stage_emits_a_stage_span_with_cache_args() {
        use opm_core::telemetry::{Aggregator, Telemetry, TelemetryMode};
        let tele = Telemetry::new(TelemetryMode::Summary);
        let agg = Aggregator::new();
        tele.add_sink(agg.clone());
        let eng = Engine::new(EngineConfig::serial().with_telemetry(tele.clone()));
        eng.run_stage("span_stage", |e| {
            let key = ProfileKey::Gemm {
                n: 8,
                tile: 4,
                threads: 1,
                cores: 1,
            };
            let _ = e.profile(key, || probe_profile(8));
            let _ = e.profile(key, || probe_profile(8));
            ((), 2)
        });
        let spans = agg.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].path, "span_stage");
        assert_eq!(spans[0].cat, "stage");
        let args = &spans[0].args;
        assert!(
            args.contains(&("points".to_string(), "2".to_string())),
            "{args:?}"
        );
        assert!(args.contains(&("cache_hits".to_string(), "1".to_string())));
        assert!(args.contains(&("cache_misses".to_string(), "1".to_string())));
        assert_eq!(tele.counter("opm_points_total").get(), 2);
        assert_eq!(tele.counter("opm_stages_total").get(), 1);
        assert_eq!(tele.counter("opm_profile_cache_hits_total").get(), 1);
    }

    #[test]
    fn full_mode_emits_one_point_span_per_point_under_the_stage() {
        use opm_core::telemetry::{Aggregator, Telemetry, TelemetryMode};
        for threads in [1, 4] {
            let tele = Telemetry::new(TelemetryMode::Full);
            let agg = Aggregator::new();
            tele.add_sink(agg.clone());
            let mut config = EngineConfig::serial().with_telemetry(tele);
            config.threads = threads;
            let eng = Engine::new(config);
            let items: Vec<usize> = (0..9).collect();
            eng.run_stage("pts", |e| {
                let v = e.par_map(&items, |&x| x);
                let n = v.len();
                (v, n)
            });
            let mut expect: Vec<String> = (0..9).map(|i| format!("pts>point:{i}")).collect();
            expect.push("pts".to_string());
            expect.sort();
            assert_eq!(agg.span_paths(), expect, "threads={threads}");
        }
    }

    #[test]
    fn failure_telemetry_counts_retries_recoveries_and_quarantines() {
        use opm_core::telemetry::{Telemetry, TelemetryMode};
        let tele = Telemetry::new(TelemetryMode::Summary);
        let plan = FaultPlan::parse("panic@point:1,io@point:3:persist").unwrap();
        let mut config = EngineConfig::serial()
            .with_fault_plan(plan)
            .with_telemetry(tele.clone());
        config.max_retries = 2;
        config.backoff_base_us = 0;
        let eng = Engine::new(config);
        let items: Vec<usize> = (0..5).collect();
        let _ = eng.par_map_isolated("faulty", &items, |&x| x, |_, _| usize::MAX);
        // Point 1: one retry, recovered. Point 3: persistent, 2 retries,
        // quarantined.
        assert_eq!(tele.counter("opm_points_recovered_total").get(), 1);
        assert_eq!(tele.counter("opm_points_quarantined_total").get(), 1);
        assert_eq!(tele.counter("opm_point_retries_total").get(), 3);
    }
}
