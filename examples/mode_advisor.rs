//! Mode advisor: the paper's §6 optimization guidelines as a tool. Describe
//! a workload (footprint, hot set, latency-boundedness) and get the MCDRAM
//! mode recommendation, its explanation, and an empirical cross-check
//! against the performance model.
//!
//! ```sh
//! cargo run --release --example mode_advisor [footprint_gib] [hot_gib] [latency_bound]
//! ```

use opm_repro::core::guideline::{
    empirically_best_mode, explain_mcdram, recommend_mcdram, Workload,
};
use opm_repro::core::platform::McdramMode;
use opm_repro::core::report::TextTable;
use opm_repro::core::units::GIB;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() > 1 {
        let footprint: f64 = args[1].parse().expect("footprint in GiB");
        let hot: f64 = args
            .get(2)
            .and_then(|s| s.parse().ok())
            .unwrap_or(footprint);
        let latency_bound = args
            .get(3)
            .map(|s| s == "true" || s == "1")
            .unwrap_or(false);
        let w = Workload {
            footprint: footprint * GIB,
            hot_set: hot * GIB,
            latency_bound,
        };
        println!("recommendation: {:?}", recommend_mcdram(&w));
        println!("{}", explain_mcdram(&w));
        return;
    }

    // No arguments: tour the guideline space and cross-check against the
    // model.
    println!("MCDRAM mode guidelines (paper §6) across the workload space:\n");
    let mut table = TextTable::new(vec![
        "footprint",
        "hot set",
        "latency bound",
        "guideline",
        "model's best",
        "agree",
    ]);
    let cases = [
        (4.0, 4.0, false),
        (12.0, 2.0, false),
        (40.0, 4.0, false),
        (40.0, 12.0, false),
        (8.0, 8.0, true),
    ];
    for (fp, hot, lat) in cases {
        let w = Workload {
            footprint: fp * GIB,
            hot_set: hot * GIB,
            latency_bound: lat,
        };
        let rec = recommend_mcdram(&w);
        // Probe the model with a matching synthetic workload. The guideline
        // distinguishes hot-set structure, which the single-tier probe
        // cannot express for the hybrid case — probe with the hot set when
        // it differs meaningfully.
        let (probe_fp, threads, mlp, prefetch) = if lat {
            (w.footprint, 8, 1.2, 0.05)
        } else {
            (w.footprint, 256, 10.0, 0.95)
        };
        let (best, _) = empirically_best_mode(probe_fp, 0.0625, prefetch, mlp, threads);
        // Hybrid vs cache differ by hot-set structure, which the
        // single-tier probe cannot express — count either as agreement.
        let agree = match rec {
            McdramMode::Hybrid | McdramMode::Cache => {
                best == McdramMode::Cache || best == McdramMode::Hybrid
            }
            r => r == best,
        };
        table.push(vec![
            format!("{fp:.0} GiB"),
            format!("{hot:.0} GiB"),
            format!("{lat}"),
            format!("{rec:?}"),
            format!("{best:?}"),
            format!("{agree}"),
        ]);
    }
    print!("{}", table.render());
    println!("\nexplanations:");
    for (fp, hot, lat) in cases {
        let w = Workload {
            footprint: fp * GIB,
            hot_set: hot * GIB,
            latency_bound: lat,
        };
        println!("- {}", explain_mcdram(&w));
    }
}
