//! Mode advisor: a thin `opm-api/v1` client. Describe a workload as a
//! what-if query (kernel, problem size, platform, memory mode) and get
//! back the predicted performance, energy, and the §6 mode
//! recommendation with its guideline citation.
//!
//! ```sh
//! cargo run --release --example mode_advisor [kernel] [config]
//! OPM_SERVE_ADDR=127.0.0.1:7979 cargo run --release --example mode_advisor
//! ```
//!
//! By default the example answers in-process through the exact same
//! [`opm_bench::serve::respond`] path the `opm serve` daemon runs. Set
//! `OPM_SERVE_ADDR` to forward the request to a live daemon instead —
//! the response bytes are identical either way (the `opm-api/v1`
//! byte-identity promise).

use opm_bench::serve::{respond, Client};
use opm_core::api::{Query, QueryResult, Request, Response};
use opm_kernels::Engine;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel = args.get(1).cloned().unwrap_or_else(|| "GEMM".to_string());
    let config = args.get(2).cloned().unwrap_or_else(|| "knl-flat".to_string());

    // One batched request touring the queried kernel across every KNL
    // memory mode (plus whatever config was asked for).
    let mut configs = vec![config.clone()];
    for label in ["knl-ddr", "knl-flat", "knl-cache", "knl-hybrid"] {
        if label != config {
            configs.push(label.to_string());
        }
    }
    let request = Request {
        id: 1,
        queries: configs
            .iter()
            .map(|c| Query {
                kernel: kernel.clone(),
                config: c.clone(),
                ..Query::default()
            })
            .collect(),
        shutdown: false,
    };

    let response: Response = match std::env::var("OPM_SERVE_ADDR") {
        Ok(addr) if !addr.trim().is_empty() => {
            let mut client = Client::connect(&addr)
                .unwrap_or_else(|e| panic!("connecting to opm serve at {addr}: {e}"));
            client
                .roundtrip(&request)
                .unwrap_or_else(|e| panic!("querying {addr}: {e}"))
        }
        _ => respond(Engine::global(), &request),
    };

    println!("{kernel} what-if tour (opm-api/v1):\n");
    for (q, r) in request.queries.iter().zip(&response.results) {
        match r {
            QueryResult::Ok(a) => {
                println!(
                    "  {:<12} {:>9.1} GFLOP/s  {:>8.2} ms  {:>8.2} J  -> {} ({})",
                    q.config, a.gflops, a.time_ms, a.energy_j, a.recommended_mode, a.guideline
                );
            }
            QueryResult::Err(e) => println!("  {:<12} error: {e}", q.config),
        }
    }
    if let Some(QueryResult::Ok(first)) = response.results.first() {
        println!("\n{}", first.explanation);
    }
}
