//! Roofline tour: place all eight kernels on both machines' rooflines
//! (paper Fig. 5) and walk the Stepping Model across the memory hierarchy
//! (paper Figs. 6/28/29), printing ASCII renditions.
//!
//! ```sh
//! cargo run --release --example roofline_tour
//! ```

use opm_repro::core::platform::{EdramMode, Machine, OpmConfig, PlatformSpec};
use opm_repro::core::stepping::{stepping_curve, SweepKernel};
use opm_repro::core::units::{fmt_bytes, GIB, MIB};
use opm_repro::core::Roofline;
use opm_repro::kernels::KernelId;

fn main() {
    for machine in [Machine::Broadwell, Machine::Knl] {
        let p = PlatformSpec::for_machine(machine);
        let r = Roofline::for_platform(&p);
        println!("== {} ==", p.name);
        println!(
            "DP peak {:.1} GFlop/s | {} ridge at {:.2} flops/B | {} ridge at {:.2} flops/B",
            r.dp_peak,
            p.opm.name,
            r.ridge_point(p.opm.name),
            p.dram.name,
            r.ridge_point(p.dram.name),
        );
        for k in KernelId::ALL {
            let ai = k.reference_ai();
            let with = r.attainable(ai, p.opm.name);
            let without = r.attainable(ai, p.dram.name);
            let verdict = if (with - without).abs() < 1e-9 {
                "compute bound: OPM cannot raise the roof"
            } else {
                "bandwidth bound: OPM raises the roof"
            };
            println!(
                "  {:8} AI {:7.3} -> {:7.1} GFlop/s ({}), {:7.1} without OPM  [{}]",
                k.name(),
                ai,
                with,
                p.opm.name,
                without,
                verdict
            );
        }
        println!();
    }

    // ASCII Stepping Model walk on Broadwell.
    println!("Stepping Model (Broadwell, STREAM-like kernel, GB/s equivalent):");
    let k = SweepKernel::default();
    let on = stepping_curve(
        OpmConfig::Broadwell(EdramMode::On),
        k,
        256.0 * 1024.0,
        4.0 * GIB,
        40,
    );
    let off = stepping_curve(
        OpmConfig::Broadwell(EdramMode::Off),
        k,
        256.0 * 1024.0,
        4.0 * GIB,
        40,
    );
    let max = on.points.iter().map(|p| p.1).fold(0.0, f64::max);
    for ((fp, a), (_, b)) in on.points.iter().zip(&off.points) {
        let bar = |v: f64| "#".repeat(((v / max) * 50.0).round() as usize);
        println!(
            "{:>10}  on  |{:<50}| {:6.2}",
            fmt_bytes(*fp),
            bar(*a),
            a * 16.0
        );
        println!("{:>10}  off |{:<50}| {:6.2}", "", bar(*b), b * 16.0);
    }
    let (lo, hi) = on
        .effective_region(&off, 0.10)
        .expect("eDRAM has an effective region");
    println!(
        "\neDRAM performance-effective region: {:.1} MB .. {:.1} MB (between the L3\n\
         valley and a little past the 128 MB eDRAM capacity — paper §4.1.2)",
        lo / MIB,
        hi / MIB
    );
}
