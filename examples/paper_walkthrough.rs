//! Paper walkthrough: recreate the narrative of the paper's §4 analysis as
//! a guided console tour — each section prints an observation, the model
//! evidence for it, and the section of the paper it reproduces.
//!
//! ```sh
//! cargo run --release --example paper_walkthrough
//! ```

use opm_repro::core::platform::{EdramMode, McdramMode, OpmConfig, PlatformSpec};
use opm_repro::core::stepping::{stepping_curve, SweepKernel};
use opm_repro::core::units::{GIB, MIB};
use opm_repro::core::PerfModel;
use opm_repro::dense::gemm_profile;
use opm_repro::kernels::sweeps::{sparse_sweep, stream_curve, SparseKernelId};
use opm_repro::sparse::corpus;

fn section(title: &str) {
    println!("\n==== {title} ====");
}

fn main() {
    let brd = PlatformSpec::broadwell();
    let knl = PlatformSpec::knl();
    println!(
        "Machines (paper Table 3):\n  {} — {:.1} GFlop/s DP, {} {:.0} GB/s, {} {:.1} GB/s\n  {} — {:.1} GFlop/s DP, {} {:.0} GB/s, {} {:.1} GB/s",
        brd.name, brd.dp_peak_gflops(), brd.opm.name, brd.opm.bandwidth, brd.dram.name, brd.dram.bandwidth,
        knl.name, knl.dp_peak_gflops(), knl.opm.name, knl.opm.bandwidth, knl.dram.name, knl.dram.bandwidth,
    );

    section("§4.1.1 — eDRAM and the dense kernels");
    let on = PerfModel::for_config(OpmConfig::Broadwell(EdramMode::On));
    let off = PerfModel::for_config(OpmConfig::Broadwell(EdramMode::Off));
    let good = gemm_profile(8192, 384, 4, 4); // tile fits L3
    let bad = gemm_profile(8192, 1920, 4, 4); // tile overflows L3, fits eDRAM
    println!(
        "well-tiled GEMM   (tile 384):  {:.0} -> {:.0} GFlop/s with eDRAM (peak barely moves)",
        off.evaluate(&good).gflops,
        on.evaluate(&good).gflops
    );
    println!(
        "poorly-tiled GEMM (tile 1920): {:.0} -> {:.0} GFlop/s with eDRAM (the rescued region of Fig. 7)",
        off.evaluate(&bad).gflops,
        on.evaluate(&bad).gflops
    );

    section("§4.1.2 — the eDRAM effective region for sparse kernels");
    let specs = corpus(60);
    let s_on = sparse_sweep(
        OpmConfig::Broadwell(EdramMode::On),
        SparseKernelId::Spmv,
        &specs,
    );
    let s_off = sparse_sweep(
        OpmConfig::Broadwell(EdramMode::Off),
        SparseKernelId::Spmv,
        &specs,
    );
    let mut in_region = 0;
    for (a, b) in s_on.iter().zip(&s_off) {
        if a.gflops > 1.1 * b.gflops {
            in_region += 1;
        }
    }
    println!(
        "of {} corpus matrices, {} fall in the eDRAM performance-effective region (>10% gain)",
        specs.len(),
        in_region
    );

    section("§4.1.3 — the Stepping Model on Stream");
    let k = SweepKernel::default();
    let curve = stepping_curve(
        OpmConfig::Broadwell(EdramMode::On),
        k,
        512.0 * 1024.0,
        4.0 * GIB,
        48,
    );
    let (peak_fp, peak) = curve.peak();
    println!(
        "L3 cache peak at {:.1} MB ({:.0} GB/s); eDRAM plateau ~{:.0} GB/s; DDR plateau {:.0} GB/s",
        peak_fp / MIB,
        peak * 16.0,
        curve
            .points
            .iter()
            .find(|(fp, _)| *fp > 50.0 * MIB)
            .map(|(_, g)| g * 16.0)
            .unwrap_or(0.0),
        curve.tail() * 16.0
    );

    section("§4.2.1 — MCDRAM flat mode and the straddle cliff");
    for fp_gib in [4.0, 12.0, 20.0] {
        let fps = [fp_gib * GIB];
        let flat = stream_curve(OpmConfig::Knl(McdramMode::Flat), &fps)[0].gflops;
        let ddr = stream_curve(OpmConfig::Knl(McdramMode::Off), &fps)[0].gflops;
        let verdict = if flat > ddr {
            "flat wins"
        } else {
            "flat LOSES (straddle, §4.2.1-II)"
        };
        println!(
            "footprint {fp_gib:>4.0} GiB: flat {:.1} vs DDR {:.1} GFlop/s -> {verdict}",
            flat, ddr
        );
    }

    section("§4.2.2 — SpTRSV: when MCDRAM loses on latency");
    let t_flat = sparse_sweep(
        OpmConfig::Knl(McdramMode::Flat),
        SparseKernelId::Sptrsv,
        &specs,
    );
    let t_ddr = sparse_sweep(
        OpmConfig::Knl(McdramMode::Off),
        SparseKernelId::Sptrsv,
        &specs,
    );
    let losses = t_flat
        .iter()
        .zip(&t_ddr)
        .filter(|(f, d)| f.gflops < d.gflops * 0.999)
        .count();
    println!(
        "{losses} of {} matrices run SLOWER with MCDRAM than DDR — dependency chains \
         keep too few misses in flight to amortize MCDRAM's higher latency",
        specs.len()
    );

    section("§6 — the guidelines, executable");
    use opm_repro::core::guideline::{explain_mcdram, Workload};
    for (fp, hot) in [(8.0, 8.0), (40.0, 4.0), (40.0, 12.0)] {
        let w = Workload::bandwidth_bound(fp * GIB, hot * GIB);
        println!("- {}", explain_mcdram(&w));
    }

    println!(
        "\nFull regeneration: `cargo run --release -p opm-bench --bin all_figures`,\n\
         then `report_figures` for the ASCII-chart REPORT.md."
    );
}
