//! Sparse survey: build real matrices from every structure family of the
//! UF-substitute corpus, execute SpMV / SpTRANS / SpTRSV on them, and show
//! how structure drives both the real execution and the modeled
//! OPM sensitivity (the mechanism behind paper Figs. 9–11 and 20–22).
//!
//! ```sh
//! cargo run --release --example sparse_survey
//! ```

use opm_repro::core::platform::{EdramMode, OpmConfig};
use opm_repro::core::report::TextTable;
use opm_repro::core::PerfModel;
use opm_repro::sparse::{
    level_sets, spmv_csr5, spmv_parallel, spmv_profile, sptrans_merge, sptrsv_levelset,
    sptrsv_syncfree, Csr5Matrix, MatrixKind, MatrixSpec,
};
use std::time::Instant;

fn main() {
    // Sized so the footprint (~50 MB) lands in the eDRAM-effective region
    // between the 6 MB L3 and the 128 MB eDRAM (paper §4.1.2).
    let n = 150_000;
    let nnz = 4_000_000;
    let mut table = TextTable::new(vec![
        "structure",
        "nnz",
        "span",
        "levels",
        "SpMV ms",
        "CSR5 ms",
        "SpTRANS ms",
        "SpTRSV ms",
        "sync-free ms",
        "eDRAM speedup (SpMV)",
    ]);
    for kind in MatrixKind::all(n) {
        let spec = MatrixSpec::new(kind, n, nnz, 42);
        let m = spec.build();
        let stats = m.stats();

        // Real SpMV (row-parallel CSR and tile-parallel CSR5).
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut y = vec![0.0; n];
        let t = Instant::now();
        spmv_parallel(&m, &x, &mut y);
        let spmv_ms = t.elapsed().as_secs_f64() * 1e3;
        let c5 = Csr5Matrix::from_csr(&m);
        let mut y5 = vec![0.0; n];
        let t = Instant::now();
        spmv_csr5(&c5, &x, &mut y5);
        let csr5_ms = t.elapsed().as_secs_f64() * 1e3;
        for (a, b) in y.iter().zip(&y5) {
            assert!((a - b).abs() < 1e-8);
        }

        // Real SpTRANS (MergeTrans).
        let t = Instant::now();
        let tr = sptrans_merge(&m, 8);
        let sptrans_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(tr.nnz(), m.nnz());

        // Real SpTRSV on the lower-triangular system.
        let l = m.to_lower_triangular();
        let levels = level_sets(&l).len();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let t = Instant::now();
        let xs = sptrsv_levelset(&l, &b).expect("solvable");
        let sptrsv_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(xs.len(), n);
        let t = Instant::now();
        let xf = sptrsv_syncfree(&l, &b).expect("solvable");
        let syncfree_ms = t.elapsed().as_secs_f64() * 1e3;
        for (a, b) in xs.iter().zip(&xf) {
            assert!((a - b).abs() < 1e-8);
        }

        // Modeled eDRAM sensitivity of SpMV for this structure.
        let prof = spmv_profile(stats.rows, stats.nnz, stats.avg_col_span, 8);
        let on = PerfModel::for_config(OpmConfig::Broadwell(EdramMode::On)).evaluate(&prof);
        let off = PerfModel::for_config(OpmConfig::Broadwell(EdramMode::Off)).evaluate(&prof);

        table.push(vec![
            kind.label().to_string(),
            format!("{}", stats.nnz),
            format!("{:.0}", stats.avg_col_span),
            format!("{levels}"),
            format!("{spmv_ms:.2}"),
            format!("{csr5_ms:.2}"),
            format!("{sptrans_ms:.2}"),
            format!("{sptrsv_ms:.2}"),
            format!("{syncfree_ms:.2}"),
            format!("{:.2}x", on.gflops / off.gflops),
        ]);
    }
    println!("order {n}, ~{nnz} nonzeros per matrix; real execution on this host:");
    print!("{}", table.render());
    println!(
        "\nbanded/stencil structures keep the x-vector cached (small span) but\n\
         serialize SpTRSV (levels ~ rows); random/RMAT structures gather poorly\n\
         but solve in few levels — exactly the trade-off of the paper's heat maps."
    );
}
