//! Quickstart: run a kernel for real, then ask the performance model what
//! every on-package-memory configuration of the paper would do with it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use opm_repro::core::platform::OpmConfig;
use opm_repro::core::report::TextTable;
use opm_repro::core::units::fmt_bytes;
use opm_repro::core::{PerfModel, PowerModel};
use opm_repro::dense::{gemm_parallel, gemm_profile, DenseMatrix};
use std::time::Instant;

fn main() {
    // 1. Really execute a tiled GEMM (numerics verified by the test suite).
    let n = 384;
    let tile = 64;
    let a = DenseMatrix::random(n, n, 1);
    let b = DenseMatrix::random(n, n, 2);
    let mut c = DenseMatrix::zeros(n, n);
    let t0 = Instant::now();
    gemm_parallel(1.0, &a, &b, 0.0, &mut c, tile);
    let wall = t0.elapsed();
    let flops = 2.0 * (n as f64).powi(3);
    println!(
        "executed {n}x{n} GEMM (tile {tile}) in {:.1} ms -> {:.2} GFlop/s on this host\n",
        wall.as_secs_f64() * 1e3,
        flops / wall.as_nanos() as f64
    );

    // 2. Model the same kernel, at the paper's scale, on both evaluated
    //    machines under every OPM configuration of Table 1.
    let mut table = TextTable::new(vec![
        "configuration",
        "modeled GFlop/s",
        "package W",
        "DRAM W",
    ]);
    let big_n = 8192;
    let big_tile = 384;
    for config in OpmConfig::broadwell_modes()
        .into_iter()
        .chain(OpmConfig::knl_modes())
    {
        let machine = config.machine();
        let platform = opm_repro::core::PlatformSpec::for_machine(machine);
        let threads = opm_repro::kernels::KernelId::Gemm.threads(machine);
        let prof = gemm_profile(big_n, big_tile, threads, platform.cores);
        let est = PerfModel::for_config(config).evaluate(&prof);
        let power = PowerModel::for_machine(machine).sample(
            &est,
            config,
            prof.total_flops(),
            prof.total_bytes(),
        );
        table.push(vec![
            config.label().to_string(),
            format!("{:.1}", est.gflops),
            format!("{:.1}", power.package_w),
            format!("{:.1}", power.dram_w),
        ]);
    }
    println!(
        "modeled {big_n}x{big_n} GEMM (tile {big_tile}, footprint {}):",
        fmt_bytes(3.0 * (big_n * big_n) as f64 * 8.0)
    );
    print!("{}", table.render());
    println!("\nnext steps: `cargo run --release -p opm-bench --bin all_figures` regenerates");
    println!("every table and figure of the paper into results/.");
}
